//! The round-robin (RR) baseline scheduler.
//!
//! "We also compare against a round robin scheduler (RR), which is a batch
//! processing solution being proposed for SkyQuery. RR performs sequential
//! batch processing by servicing buckets in HTM ID order. It is oblivious to
//! both the length of workload queues and age of requests, but is fair in
//! that a request receives the same attention by the scheduler regardless of
//! which bucket it joins with" — Section 5.

use liferaft_storage::BucketId;

use crate::scheduler::{BatchScope, BatchSpec, Scheduler, SchedulerView};

/// Cyclic sweep over buckets in HTM-ID order, servicing any non-empty queue
/// encountered. Batches share I/O like LifeRaft's (RR *is* a batch processor
/// — only its ordering is data-oblivious). The cursor resolves against the
/// view's bucket-order probe ([`SchedulerView::candidate_at_or_after`]), so
/// a decision is one O(log n) lookup, not a candidate scan.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    /// Next bucket index to consider (wraps around).
    cursor: u32,
}

impl RoundRobinScheduler {
    /// Creates an RR scheduler starting its sweep at bucket 0.
    pub fn new() -> Self {
        RoundRobinScheduler { cursor: 0 }
    }

    /// Current cursor position (next bucket to be considered).
    pub fn cursor(&self) -> BucketId {
        BucketId(self.cursor)
    }
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> String {
        "RR".to_string()
    }

    fn pick(&mut self, view: &dyn SchedulerView) -> Option<BatchSpec> {
        // The first candidate at/after the cursor, wrapping to the smallest.
        let next = view
            .candidate_at_or_after(BucketId(self.cursor))
            .or_else(|| view.candidate_at_or_after(BucketId(0)))?;
        self.cursor = next.bucket.0.wrapping_add(1);
        Some(BatchSpec {
            bucket: next.bucket,
            scope: BatchScope::AllQueued,
            share_io: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{BucketSnapshot, FixtureView};
    use liferaft_storage::SimTime;

    fn snap(bucket: u32) -> BucketSnapshot {
        BucketSnapshot {
            bucket: BucketId(bucket),
            queue_len: 1,
            oldest_enqueue: SimTime::ZERO,
            cached: false,
            bucket_objects: 100,
        }
    }

    fn view(buckets: &[u32]) -> FixtureView {
        FixtureView {
            now: SimTime::from_micros(1),
            candidates: buckets.iter().map(|&b| snap(b)).collect(),
            oldest_query: None,
            query_buckets: vec![],
        }
    }

    #[test]
    fn sweeps_in_htm_order_and_wraps() {
        let mut rr = RoundRobinScheduler::new();
        let v = view(&[2, 5, 9]);
        assert_eq!(rr.pick(&v).unwrap().bucket, BucketId(2));
        assert_eq!(rr.pick(&v).unwrap().bucket, BucketId(5));
        assert_eq!(rr.pick(&v).unwrap().bucket, BucketId(9));
        // Wraps to the smallest again.
        assert_eq!(rr.pick(&v).unwrap().bucket, BucketId(2));
    }

    #[test]
    fn skips_empty_buckets() {
        let mut rr = RoundRobinScheduler::new();
        // Cursor at 0 but first candidate is 7.
        let v = view(&[7]);
        assert_eq!(rr.pick(&v).unwrap().bucket, BucketId(7));
        assert_eq!(rr.cursor(), BucketId(8));
    }

    #[test]
    fn oblivious_to_queue_length_and_age() {
        let mut rr = RoundRobinScheduler::new();
        let mut v = view(&[1, 3]);
        // Make bucket 3 hugely contended; RR must still take 1 first.
        v.candidates[1].queue_len = 1_000_000;
        assert_eq!(rr.pick(&v).unwrap().bucket, BucketId(1));
    }

    #[test]
    fn batches_are_shared() {
        let mut rr = RoundRobinScheduler::new();
        let v = view(&[0]);
        let pick = rr.pick(&v).unwrap();
        assert_eq!(pick.bucket, BucketId(0));
        assert!(pick.share_io);
        assert_eq!(pick.scope, BatchScope::AllQueued);
    }

    #[test]
    fn idle_on_empty_view() {
        let mut rr = RoundRobinScheduler::new();
        assert!(rr.pick(&view(&[])).is_none());
    }
}
