//! The NoShare baseline scheduler.
//!
//! "We compare with NoShare, which evaluates each query independently (no
//! I/O is shared) and in arrival order" — Section 5. NoShare is what a
//! conventional in-order database scheduler does to this workload: the
//! oldest query runs to completion, reading every bucket it needs by
//! itself, before the next query starts.

use crate::scheduler::{BatchScope, BatchSpec, Scheduler, SchedulerView};

/// Strict arrival-order, share-nothing query evaluation.
///
/// Each decision services the *oldest in-flight query*, one of its pending
/// buckets at a time (in HTM order), with `share_io = false` so neither the
/// bucket cache nor co-queued requests of other queries benefit.
#[derive(Debug, Clone, Default)]
pub struct NoShareScheduler;

impl NoShareScheduler {
    /// Creates the baseline.
    pub fn new() -> Self {
        NoShareScheduler
    }
}

impl Scheduler for NoShareScheduler {
    fn name(&self) -> String {
        "NoShare".to_string()
    }

    fn pick(&mut self, view: &dyn SchedulerView) -> Option<BatchSpec> {
        let (query, _arrival) = view.oldest_pending_query()?;
        let bucket = view.first_pending_bucket_of(query)?;
        Some(BatchSpec {
            bucket,
            scope: BatchScope::SingleQuery(query),
            share_io: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{BucketSnapshot, FixtureView};
    use liferaft_query::QueryId;
    use liferaft_storage::{BucketId, SimTime};

    #[test]
    fn services_oldest_query_bucket_by_bucket() {
        let mut s = NoShareScheduler::new();
        let v = FixtureView {
            now: SimTime::from_micros(100),
            candidates: vec![BucketSnapshot {
                bucket: BucketId(4),
                queue_len: 10,
                oldest_enqueue: SimTime::ZERO,
                cached: false,
                bucket_objects: 100,
            }],
            oldest_query: Some((QueryId(7), SimTime::ZERO)),
            query_buckets: vec![(QueryId(7), vec![BucketId(4), BucketId(9)])],
        };
        let pick = s.pick(&v).unwrap();
        assert_eq!(pick.bucket, BucketId(4));
        assert_eq!(pick.scope, BatchScope::SingleQuery(QueryId(7)));
        assert!(!pick.share_io, "NoShare must not share I/O");
    }

    #[test]
    fn idle_when_no_pending_query() {
        let mut s = NoShareScheduler::new();
        let v = FixtureView::default();
        assert!(s.pick(&v).is_none());
    }

    #[test]
    fn idle_when_query_has_no_buckets() {
        // Defensive: a pending query whose entries are all in flight.
        let mut s = NoShareScheduler::new();
        let v = FixtureView {
            oldest_query: Some((QueryId(1), SimTime::ZERO)),
            ..FixtureView::default()
        };
        assert!(s.pick(&v).is_none());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(NoShareScheduler::new().name(), "NoShare");
    }
}
