//! The scheduler abstraction: views, batch specifications, and the trait.

use liferaft_query::QueryId;
use liferaft_storage::{BucketId, SimTime};

// The snapshot type lives in the query crate so the Workload Manager can
// maintain snapshots incrementally; re-exported here because it is the
// scheduler's decision input.
pub use liferaft_query::snapshot::BucketSnapshot;

/// Which queued entries a batch consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchScope {
    /// Everything queued at the bucket (the LifeRaft batch: "all queries
    /// overlapping that data region in one batch").
    AllQueued,
    /// Only one query's entries (the NoShare evaluation unit).
    SingleQuery(QueryId),
}

/// A scheduling decision: which bucket to service next, with what scope and
/// I/O-sharing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    /// The bucket to read and join against.
    pub bucket: BucketId,
    /// Which entries to consume.
    pub scope: BatchScope,
    /// If false, the batch bypasses the bucket cache entirely — the NoShare
    /// baseline's "no I/O is shared" discipline. Shared batches consult and
    /// populate the cache.
    pub share_io: bool,
}

/// A decision plus its provenance: the batch to run and, when the policy
/// derived the choice from [`SchedulerView::candidates`], the index of the
/// chosen snapshot — so the engine locates the bucket in O(1) instead of
/// re-scanning the candidate slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pick {
    /// The batch to execute.
    pub spec: BatchSpec,
    /// Index of `spec.bucket` in the candidate slice the decision was made
    /// over, if the policy knows it. `None` for policies that choose the
    /// bucket through another lens (e.g. NoShare's per-query cursor).
    pub candidate: Option<usize>,
}

impl Pick {
    /// A decision over candidate `idx` of the view's candidate slice.
    pub fn of_candidate(idx: usize, spec: BatchSpec) -> Self {
        Pick {
            spec,
            candidate: Some(idx),
        }
    }

    /// A decision made without reference to the candidate slice.
    pub fn unindexed(spec: BatchSpec) -> Self {
        Pick {
            spec,
            candidate: None,
        }
    }
}

/// What a scheduler may observe when making a decision.
///
/// The simulation engine implements this over its live state; unit tests
/// implement it with fixtures.
pub trait SchedulerView {
    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Snapshots of all non-empty workload queues, sorted by bucket ID.
    fn candidates(&self) -> &[BucketSnapshot];

    /// The in-flight query with the earliest arrival, if any (FIFO cursor
    /// for arrival-order baselines).
    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)>;

    /// Buckets that still hold queued entries of `query`, sorted by bucket ID.
    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId>;

    /// The lowest-ID bucket still holding queued entries of `query`, if any
    /// — the allocation-free cursor used by arrival-order policies. Views
    /// with an indexed per-query structure should override the default.
    fn first_pending_bucket_of(&self, query: QueryId) -> Option<BucketId> {
        self.pending_buckets_of(query).into_iter().next()
    }
}

/// A batch scheduling policy.
pub trait Scheduler {
    /// Human-readable policy name (used in reports and figure rows).
    fn name(&self) -> String;

    /// Chooses the next batch, or `None` if the view offers no work.
    fn pick(&mut self, view: &dyn SchedulerView) -> Option<Pick>;

    /// Notification of a query arrival (used by adaptive policies to track
    /// workload saturation). Default: ignored.
    fn on_query_arrival(&mut self, _now: SimTime) {}
}

/// A fixture view for scheduler unit tests.
#[derive(Debug, Clone, Default)]
pub struct FixtureView {
    /// Current time reported by the fixture.
    pub now: SimTime,
    /// Candidate snapshots (keep sorted by bucket).
    pub candidates: Vec<BucketSnapshot>,
    /// Value returned by [`SchedulerView::oldest_pending_query`].
    pub oldest_query: Option<(QueryId, SimTime)>,
    /// Pending buckets per query for [`SchedulerView::pending_buckets_of`].
    pub query_buckets: Vec<(QueryId, Vec<BucketId>)>,
}

impl SchedulerView for FixtureView {
    fn now(&self) -> SimTime {
        self.now
    }

    fn candidates(&self) -> &[BucketSnapshot] {
        &self.candidates
    }

    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)> {
        self.oldest_query
    }

    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId> {
        self.query_buckets
            .iter()
            .find(|(q, _)| *q == query)
            .map(|(_, b)| b.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::SimDuration;

    #[test]
    fn snapshot_age_is_visible_through_the_reexport() {
        let s = BucketSnapshot {
            bucket: BucketId(1),
            queue_len: 5,
            oldest_enqueue: SimTime::ZERO,
            cached: false,
            bucket_objects: 100,
        };
        let now = SimTime::ZERO + SimDuration::from_millis(2500);
        assert_eq!(s.age_ms(now), 2500.0);
    }

    #[test]
    fn pick_constructors() {
        let spec = BatchSpec {
            bucket: BucketId(3),
            scope: BatchScope::AllQueued,
            share_io: true,
        };
        assert_eq!(Pick::of_candidate(2, spec).candidate, Some(2));
        assert_eq!(Pick::unindexed(spec).candidate, None);
        assert_eq!(Pick::unindexed(spec).spec, spec);
    }

    #[test]
    fn fixture_view_contract() {
        let v = FixtureView {
            now: SimTime::from_micros(7),
            candidates: vec![],
            oldest_query: Some((QueryId(3), SimTime::ZERO)),
            query_buckets: vec![(QueryId(3), vec![BucketId(2), BucketId(5)])],
        };
        assert_eq!(v.now(), SimTime::from_micros(7));
        assert!(v.candidates().is_empty());
        assert_eq!(v.oldest_pending_query(), Some((QueryId(3), SimTime::ZERO)));
        assert_eq!(
            v.pending_buckets_of(QueryId(3)),
            vec![BucketId(2), BucketId(5)]
        );
        assert!(v.pending_buckets_of(QueryId(9)).is_empty());
        assert_eq!(v.first_pending_bucket_of(QueryId(3)), Some(BucketId(2)));
        assert_eq!(v.first_pending_bucket_of(QueryId(9)), None);
    }
}
