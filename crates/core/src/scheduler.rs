//! The scheduler abstraction: views, batch specifications, and the trait.
//!
//! Since the candidate index landed, a view is no longer "a slice of every
//! candidate snapshot": it is a query surface over an *incrementally
//! maintained* candidate set — top/bottom/frontier lookups under the two
//! α-decomposed orderings ([`Lens`]), a bucket-order cursor probe, and the
//! per-query accessors arrival-order policies use. Policies that truly need
//! every candidate stream them through
//! [`for_each_candidate`](SchedulerView::for_each_candidate); nothing
//! materializes a snapshot vector per decision anymore.

use liferaft_query::index::{age_key, uncached_key};
use liferaft_query::{QueryId, WorkloadTable};
use liferaft_storage::{BucketId, SimTime};

// The snapshot type lives in the query crate so the Workload Manager can
// maintain snapshots incrementally; re-exported here because it is the
// scheduler's decision input.
pub use liferaft_query::snapshot::BucketSnapshot;

/// Which queued entries a batch consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchScope {
    /// Everything queued at the bucket (the LifeRaft batch: "all queries
    /// overlapping that data region in one batch").
    AllQueued,
    /// Only one query's entries (the NoShare evaluation unit).
    SingleQuery(QueryId),
}

/// A scheduling decision: which bucket to service next, with what scope and
/// I/O-sharing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    /// The bucket to read and join against.
    pub bucket: BucketId,
    /// Which entries to consume.
    pub scope: BatchScope,
    /// If false, the batch bypasses the bucket cache entirely — the NoShare
    /// baseline's "no I/O is shared" discipline. Shared batches consult and
    /// populate the cache.
    pub share_io: bool,
}

/// The exact candidate orderings the index maintains — the α-decomposed
/// terms of the aged metric (Eq. 2).
///
/// Both orders embed the decision tie-break (longer queue, then lower
/// bucket) in their tails. The `Age` maximum *is* the exact α = 1 pick; the
/// `UncachedThroughput` maximum is the only non-resident candidate an α = 0
/// pick can choose (resident candidates — φ = 0, whose float `Ut` values
/// wobble non-monotonically around `1/Tm` — are streamed via
/// [`SchedulerView::for_each_cached_candidate`] and re-scored exactly).
/// Mixed α re-ranks a frontier of both orders plus the resident pool (see
/// [`LifeRaftScheduler`](crate::liferaft::LifeRaftScheduler)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lens {
    /// Order among *uncached* candidates by workload throughput `Ut`
    /// (Eq. 1): longer queue, then lower bucket.
    UncachedThroughput,
    /// Order over all candidates by request age `A`: older oldest-enqueue
    /// first, then longer queue, then lower bucket.
    Age,
}

impl Lens {
    /// The lens ordering between two candidates. For `UncachedThroughput`
    /// both must be uncached (the lens is only defined over that pool).
    #[inline]
    pub fn cmp(self, a: &BucketSnapshot, b: &BucketSnapshot) -> std::cmp::Ordering {
        match self {
            Lens::UncachedThroughput => uncached_key(a).cmp(&uncached_key(b)),
            Lens::Age => age_key(a).cmp(&age_key(b)),
        }
    }

    /// True if `c` belongs to the lens's candidate pool.
    #[inline]
    fn covers(self, c: &BucketSnapshot) -> bool {
        match self {
            Lens::UncachedThroughput => !c.cached,
            Lens::Age => true,
        }
    }
}

/// What a scheduler may observe when making a decision.
///
/// The engine implements this over the workload table's candidate index;
/// unit tests implement it with [`FixtureView`], whose scan-based defaults
/// double as the reference semantics the indexed implementations must
/// match.
pub trait SchedulerView {
    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Number of candidates (non-empty workload queues).
    fn candidate_count(&self) -> usize;

    /// Streams every candidate snapshot, in ascending bucket order.
    fn for_each_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot));

    /// Streams the resident (φ = 0) candidates — a small pool, bounded by
    /// the bucket cache capacity, that throughput-driven picks re-score
    /// exactly. The default filters the full stream.
    fn for_each_cached_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        self.for_each_candidate(&mut |c| {
            if c.cached {
                f(c);
            }
        });
    }

    /// The candidate of `lens`'s pool maximal under `lens` — exact,
    /// tie-breaks included. Indexed views answer in O(log n); the default
    /// scans.
    fn top_candidate(&self, lens: Lens) -> Option<BucketSnapshot> {
        let mut best: Option<BucketSnapshot> = None;
        self.for_each_candidate(&mut |c| {
            if !lens.covers(c) {
                return;
            }
            best = Some(match best.take() {
                Some(b) if lens.cmp(c, &b).is_le() => b,
                _ => *c,
            });
        });
        best
    }

    /// The candidate of `lens`'s pool minimal under `lens` (normalization
    /// lower bound).
    fn bottom_candidate(&self, lens: Lens) -> Option<BucketSnapshot> {
        let mut worst: Option<BucketSnapshot> = None;
        self.for_each_candidate(&mut |c| {
            if !lens.covers(c) {
                return;
            }
            worst = Some(match worst.take() {
                Some(w) if lens.cmp(c, &w).is_ge() => w,
                _ => *c,
            });
        });
        worst
    }

    /// Fills `out` (cleared first) with up to `k` candidates of `lens`'s
    /// pool in descending `lens` order — the mixed-α frontier. The default
    /// collects and sorts; indexed views walk their order directly.
    fn top_candidates(&self, lens: Lens, k: usize, out: &mut Vec<BucketSnapshot>) {
        out.clear();
        self.for_each_candidate(&mut |c| {
            if lens.covers(c) {
                out.push(*c);
            }
        });
        out.sort_by(|a, b| lens.cmp(b, a));
        out.truncate(k);
    }

    /// The first candidate at or after `bucket` in bucket order — the
    /// round-robin cursor probe (callers wrap to `BucketId(0)` themselves).
    fn candidate_at_or_after(&self, bucket: BucketId) -> Option<BucketSnapshot> {
        let mut found: Option<BucketSnapshot> = None;
        self.for_each_candidate(&mut |c| {
            if c.bucket >= bucket && found.map_or(true, |f| c.bucket < f.bucket) {
                found = Some(*c);
            }
        });
        found
    }

    /// The in-flight query with the earliest arrival, if any (FIFO cursor
    /// for arrival-order baselines).
    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)>;

    /// Buckets that still hold queued entries of `query`, sorted by bucket ID.
    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId>;

    /// The lowest-ID bucket still holding queued entries of `query`, if any
    /// — the allocation-free cursor used by arrival-order policies. Views
    /// with an indexed per-query structure should override the default.
    fn first_pending_bucket_of(&self, query: QueryId) -> Option<BucketId> {
        self.pending_buckets_of(query).into_iter().next()
    }
}

/// Views whose candidate surface *is* a [`WorkloadTable`]'s candidate
/// index. Implementors supply the clock, the table, and the per-query
/// cursor state; a blanket impl derives the whole [`SchedulerView`]
/// candidate surface from the table's indexed accessors — so the engine,
/// the benches, and the equivalence tests all run the exact same dispatch
/// instead of hand-mirrored adapter copies.
///
/// φ freshness is the implementor's contract: call
/// [`WorkloadTable::sync_residency`] before handing the view to a
/// scheduler.
pub trait IndexedSchedulerView {
    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// The workload table whose index answers candidate queries.
    fn table(&self) -> &WorkloadTable;

    /// See [`SchedulerView::oldest_pending_query`].
    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)>;

    /// See [`SchedulerView::pending_buckets_of`].
    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId>;

    /// See [`SchedulerView::first_pending_bucket_of`].
    fn first_pending_bucket_of(&self, query: QueryId) -> Option<BucketId> {
        IndexedSchedulerView::pending_buckets_of(self, query)
            .into_iter()
            .next()
    }
}

impl<T: IndexedSchedulerView> SchedulerView for T {
    fn now(&self) -> SimTime {
        IndexedSchedulerView::now(self)
    }

    fn candidate_count(&self) -> usize {
        self.table().candidate_count()
    }

    fn for_each_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        self.table().for_each_candidate(f);
    }

    fn for_each_cached_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        self.table().for_each_cached_candidate(f);
    }

    fn top_candidate(&self, lens: Lens) -> Option<BucketSnapshot> {
        match lens {
            Lens::UncachedThroughput => self.table().top_candidate_uncached(),
            Lens::Age => self.table().top_candidate_age(),
        }
    }

    fn bottom_candidate(&self, lens: Lens) -> Option<BucketSnapshot> {
        match lens {
            Lens::UncachedThroughput => self.table().bottom_candidate_uncached(),
            Lens::Age => self.table().bottom_candidate_age(),
        }
    }

    fn top_candidates(&self, lens: Lens, k: usize, out: &mut Vec<BucketSnapshot>) {
        match lens {
            Lens::UncachedThroughput => self.table().uncached_frontier_into(k, out),
            Lens::Age => self.table().age_frontier_into(k, out),
        }
    }

    fn candidate_at_or_after(&self, bucket: BucketId) -> Option<BucketSnapshot> {
        self.table().candidate_at_or_after(bucket)
    }

    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)> {
        IndexedSchedulerView::oldest_pending_query(self)
    }

    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId> {
        IndexedSchedulerView::pending_buckets_of(self, query)
    }

    fn first_pending_bucket_of(&self, query: QueryId) -> Option<BucketId> {
        IndexedSchedulerView::first_pending_bucket_of(self, query)
    }
}

/// Decision-path counters a policy accumulates over its lifetime — the data
/// that settles "how often does the mixed-α threshold scan actually close
/// its bound?" (the ROADMAP's kinetic-heap question). Policies without a
/// threshold scan report all-zero stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Mixed-α picks resolved by the frontier threshold scan (the score
    /// bound closed, or the frontier covered the candidate set).
    pub frontier_picks: u64,
    /// Mixed-α picks that fell back to the full streamed scan because the
    /// bound could not prune before the frontier covered most candidates.
    pub fallback_picks: u64,
}

/// A batch scheduling policy.
pub trait Scheduler {
    /// Human-readable policy name (used in reports and figure rows).
    fn name(&self) -> String;

    /// Chooses the next batch, or `None` if the view offers no work.
    fn pick(&mut self, view: &dyn SchedulerView) -> Option<BatchSpec>;

    /// Notification of a query arrival (used by adaptive policies to track
    /// workload saturation). Default: ignored.
    fn on_query_arrival(&mut self, _now: SimTime) {}

    /// Decision-path counters accumulated so far. Default: all zero (the
    /// policy has no instrumented scan).
    fn decision_stats(&self) -> DecisionStats {
        DecisionStats::default()
    }
}

/// A fixture view for scheduler unit tests: the scan-based reference
/// implementation of every indexed accessor.
#[derive(Debug, Clone, Default)]
pub struct FixtureView {
    /// Current time reported by the fixture.
    pub now: SimTime,
    /// Candidate snapshots (keep sorted by bucket).
    pub candidates: Vec<BucketSnapshot>,
    /// Value returned by [`SchedulerView::oldest_pending_query`].
    pub oldest_query: Option<(QueryId, SimTime)>,
    /// Pending buckets per query for [`SchedulerView::pending_buckets_of`].
    pub query_buckets: Vec<(QueryId, Vec<BucketId>)>,
}

impl SchedulerView for FixtureView {
    fn now(&self) -> SimTime {
        self.now
    }

    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn for_each_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        for c in &self.candidates {
            f(c);
        }
    }

    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)> {
        self.oldest_query
    }

    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId> {
        self.query_buckets
            .iter()
            .find(|(q, _)| *q == query)
            .map(|(_, b)| b.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::SimDuration;

    fn snap(bucket: u32, queue_len: u64, enq_us: u64, cached: bool) -> BucketSnapshot {
        BucketSnapshot {
            bucket: BucketId(bucket),
            queue_len,
            oldest_enqueue: SimTime::from_micros(enq_us),
            cached,
            bucket_objects: 100,
        }
    }

    #[test]
    fn snapshot_age_is_visible_through_the_reexport() {
        let s = snap(1, 5, 0, false);
        let now = SimTime::ZERO + SimDuration::from_millis(2500);
        assert_eq!(s.age_ms(now), 2500.0);
    }

    #[test]
    fn fixture_view_contract() {
        let v = FixtureView {
            now: SimTime::from_micros(7),
            candidates: vec![],
            oldest_query: Some((QueryId(3), SimTime::ZERO)),
            query_buckets: vec![(QueryId(3), vec![BucketId(2), BucketId(5)])],
        };
        assert_eq!(v.now(), SimTime::from_micros(7));
        assert_eq!(v.candidate_count(), 0);
        assert_eq!(v.top_candidate(Lens::UncachedThroughput), None);
        assert_eq!(v.oldest_pending_query(), Some((QueryId(3), SimTime::ZERO)));
        assert_eq!(
            v.pending_buckets_of(QueryId(3)),
            vec![BucketId(2), BucketId(5)]
        );
        assert!(v.pending_buckets_of(QueryId(9)).is_empty());
        assert_eq!(v.first_pending_bucket_of(QueryId(3)), Some(BucketId(2)));
        assert_eq!(v.first_pending_bucket_of(QueryId(9)), None);
    }

    #[test]
    fn default_lens_accessors_scan_correctly() {
        let v = FixtureView {
            now: SimTime::from_micros(1_000),
            candidates: vec![
                snap(0, 10, 500, false),
                snap(3, 2, 100, true),
                snap(7, 90, 300, false),
            ],
            ..FixtureView::default()
        };
        // The cached candidate is outside the uncached-throughput pool.
        assert_eq!(
            v.top_candidate(Lens::UncachedThroughput).unwrap().bucket,
            BucketId(7)
        );
        assert_eq!(
            v.bottom_candidate(Lens::UncachedThroughput).unwrap().bucket,
            BucketId(0)
        );
        // ... but is streamed through the resident pool.
        let mut cached = Vec::new();
        v.for_each_cached_candidate(&mut |c| cached.push(c.bucket));
        assert_eq!(cached, vec![BucketId(3)]);
        // Oldest enqueue wins the age lens; youngest is the bottom.
        assert_eq!(v.top_candidate(Lens::Age).unwrap().bucket, BucketId(3));
        assert_eq!(v.bottom_candidate(Lens::Age).unwrap().bucket, BucketId(0));
        let mut out = Vec::new();
        v.top_candidates(Lens::UncachedThroughput, 2, &mut out);
        assert_eq!(
            out.iter().map(|c| c.bucket).collect::<Vec<_>>(),
            vec![BucketId(7), BucketId(0)]
        );
        v.top_candidates(Lens::Age, 5, &mut out);
        assert_eq!(
            out.iter().map(|c| c.bucket).collect::<Vec<_>>(),
            vec![BucketId(3), BucketId(7), BucketId(0)]
        );
        // Cursor probe.
        assert_eq!(
            v.candidate_at_or_after(BucketId(0)).unwrap().bucket,
            BucketId(0)
        );
        assert_eq!(
            v.candidate_at_or_after(BucketId(1)).unwrap().bucket,
            BucketId(3)
        );
        assert_eq!(v.candidate_at_or_after(BucketId(8)), None);
    }

    #[test]
    fn lens_ties_break_by_queue_then_bucket() {
        let a = snap(4, 10, 100, false);
        let b = snap(9, 10, 100, false);
        // Equal keys except bucket: the lower bucket orders higher.
        assert!(Lens::UncachedThroughput.cmp(&a, &b).is_gt());
        assert!(Lens::Age.cmp(&a, &b).is_gt());
        let long = snap(9, 20, 100, false);
        assert!(Lens::UncachedThroughput.cmp(&long, &a).is_gt());
        assert!(Lens::Age.cmp(&long, &a).is_gt());
    }
}
