//! The scheduler abstraction: views, batch specifications, and the trait.

use liferaft_query::QueryId;
use liferaft_storage::{BucketId, SimTime};

/// A per-decision snapshot of one candidate bucket (a non-empty workload
/// queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// The bucket.
    pub bucket: BucketId,
    /// Objects pending in its workload queue (`Σ_j |W_j^i|`).
    pub queue_len: u64,
    /// Enqueue time of the oldest pending request (the age reference).
    pub oldest_enqueue: SimTime,
    /// Whether the bucket is resident in the bucket cache (φ(i) = 0).
    pub cached: bool,
    /// Catalog objects stored in the bucket (for hybrid-ratio context).
    pub bucket_objects: u64,
}

impl BucketSnapshot {
    /// Age of the oldest request in milliseconds at `now` — the paper's `A(i)`.
    pub fn age_ms(&self, now: SimTime) -> f64 {
        now.since(self.oldest_enqueue).as_millis_f64()
    }
}

/// Which queued entries a batch consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchScope {
    /// Everything queued at the bucket (the LifeRaft batch: "all queries
    /// overlapping that data region in one batch").
    AllQueued,
    /// Only one query's entries (the NoShare evaluation unit).
    SingleQuery(QueryId),
}

/// A scheduling decision: which bucket to service next, with what scope and
/// I/O-sharing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    /// The bucket to read and join against.
    pub bucket: BucketId,
    /// Which entries to consume.
    pub scope: BatchScope,
    /// If false, the batch bypasses the bucket cache entirely — the NoShare
    /// baseline's "no I/O is shared" discipline. Shared batches consult and
    /// populate the cache.
    pub share_io: bool,
}

/// What a scheduler may observe when making a decision.
///
/// The simulation engine implements this over its live state; unit tests
/// implement it with fixtures.
pub trait SchedulerView {
    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Snapshots of all non-empty workload queues, sorted by bucket ID.
    fn candidates(&self) -> &[BucketSnapshot];

    /// The in-flight query with the earliest arrival, if any (FIFO cursor
    /// for arrival-order baselines).
    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)>;

    /// Buckets that still hold queued entries of `query`, sorted by bucket ID.
    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId>;
}

/// A batch scheduling policy.
pub trait Scheduler {
    /// Human-readable policy name (used in reports and figure rows).
    fn name(&self) -> String;

    /// Chooses the next batch, or `None` if the view offers no work.
    fn pick(&mut self, view: &dyn SchedulerView) -> Option<BatchSpec>;

    /// Notification of a query arrival (used by adaptive policies to track
    /// workload saturation). Default: ignored.
    fn on_query_arrival(&mut self, _now: SimTime) {}
}

/// A fixture view for scheduler unit tests.
#[derive(Debug, Clone, Default)]
pub struct FixtureView {
    /// Current time reported by the fixture.
    pub now: SimTime,
    /// Candidate snapshots (keep sorted by bucket).
    pub candidates: Vec<BucketSnapshot>,
    /// Value returned by [`SchedulerView::oldest_pending_query`].
    pub oldest_query: Option<(QueryId, SimTime)>,
    /// Pending buckets per query for [`SchedulerView::pending_buckets_of`].
    pub query_buckets: Vec<(QueryId, Vec<BucketId>)>,
}

impl SchedulerView for FixtureView {
    fn now(&self) -> SimTime {
        self.now
    }

    fn candidates(&self) -> &[BucketSnapshot] {
        &self.candidates
    }

    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)> {
        self.oldest_query
    }

    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId> {
        self.query_buckets
            .iter()
            .find(|(q, _)| *q == query)
            .map(|(_, b)| b.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::SimDuration;

    #[test]
    fn snapshot_age() {
        let s = BucketSnapshot {
            bucket: BucketId(1),
            queue_len: 5,
            oldest_enqueue: SimTime::ZERO,
            cached: false,
            bucket_objects: 100,
        };
        let now = SimTime::ZERO + SimDuration::from_millis(2500);
        assert_eq!(s.age_ms(now), 2500.0);
    }

    #[test]
    fn fixture_view_contract() {
        let v = FixtureView {
            now: SimTime::from_micros(7),
            candidates: vec![],
            oldest_query: Some((QueryId(3), SimTime::ZERO)),
            query_buckets: vec![(QueryId(3), vec![BucketId(2), BucketId(5)])],
        };
        assert_eq!(v.now(), SimTime::from_micros(7));
        assert!(v.candidates().is_empty());
        assert_eq!(v.oldest_pending_query(), Some((QueryId(3), SimTime::ZERO)));
        assert_eq!(
            v.pending_buckets_of(QueryId(3)),
            vec![BucketId(2), BucketId(5)]
        );
        assert!(v.pending_buckets_of(QueryId(9)).is_empty());
    }
}
