//! Workload-adaptive selection of the age bias α.
//!
//! "Parameter selection is based on the query throughput versus response
//! time trade-off curve […] Currently, we determine trade-off curves offline
//! by manually varying workload saturation using a representative workload.
//! The final component is a user specified tolerance threshold, which
//! indicates how much degradation in query throughput is permitted."
//! — Section 4, Figure 4.
//!
//! [`TradeoffTable`] stores the offline curves (one per calibrated
//! saturation), [`SaturationEstimator`] measures the live arrival rate over
//! a sliding window, and [`AlphaController`] combines the two: pick, at the
//! current saturation, the α that minimizes mean response time subject to
//! throughput staying within `tolerance` of the maximum.

use std::collections::VecDeque;

use liferaft_storage::{SimDuration, SimTime};

/// One calibrated operating point: running bias α at a given saturation
/// produced this throughput and response time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The age bias.
    pub alpha: f64,
    /// Measured query throughput (queries/second).
    pub throughput_qps: f64,
    /// Measured mean response time (seconds).
    pub mean_response_s: f64,
}

/// The trade-off curve at one workload saturation (one line of Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffCurve {
    saturation_qps: f64,
    points: Vec<TradeoffPoint>,
}

impl TradeoffCurve {
    /// Creates a curve from calibration points (any order; sorted by α).
    ///
    /// # Panics
    /// Panics if empty, if α values repeat, or if any value is non-finite.
    pub fn new(saturation_qps: f64, mut points: Vec<TradeoffPoint>) -> Self {
        assert!(!points.is_empty(), "a trade-off curve needs points");
        assert!(saturation_qps.is_finite() && saturation_qps > 0.0);
        for p in &points {
            assert!(
                p.alpha.is_finite()
                    && p.throughput_qps.is_finite()
                    && p.mean_response_s.is_finite(),
                "non-finite calibration point {p:?}"
            );
            assert!((0.0..=1.0).contains(&p.alpha), "α out of range in {p:?}");
        }
        points.sort_by(|a, b| a.alpha.partial_cmp(&b.alpha).expect("finite α"));
        assert!(
            points.windows(2).all(|w| w[0].alpha < w[1].alpha),
            "duplicate α in calibration points"
        );
        TradeoffCurve {
            saturation_qps,
            points,
        }
    }

    /// The saturation this curve was calibrated at.
    pub fn saturation_qps(&self) -> f64 {
        self.saturation_qps
    }

    /// The calibration points, sorted by α.
    pub fn points(&self) -> &[TradeoffPoint] {
        &self.points
    }

    /// Maximum achievable throughput over all α on this curve.
    pub fn max_throughput(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.throughput_qps)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Selects α: among points whose throughput is within `tolerance`
    /// (e.g. 0.2 = "sacrifice at most 20%") of the maximum, the one with the
    /// smallest mean response time; ties prefer the larger α (more fairness
    /// for free).
    pub fn select_alpha(&self, tolerance: f64) -> f64 {
        assert!((0.0..=1.0).contains(&tolerance), "tolerance in [0,1]");
        let floor = self.max_throughput() * (1.0 - tolerance);
        let mut best: Option<&TradeoffPoint> = None;
        for p in &self.points {
            if p.throughput_qps + 1e-12 < floor {
                continue;
            }
            best = match best {
                None => Some(p),
                Some(b)
                    if p.mean_response_s < b.mean_response_s
                        || (p.mean_response_s == b.mean_response_s && p.alpha > b.alpha) =>
                {
                    Some(p)
                }
                Some(b) => Some(b),
            };
        }
        best.expect("the max-throughput point is always feasible")
            .alpha
    }
}

/// The offline calibration table: trade-off curves across saturations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TradeoffTable {
    /// Curves sorted by saturation.
    curves: Vec<TradeoffCurve>,
}

impl TradeoffTable {
    /// Builds a table from curves (any order).
    ///
    /// # Panics
    /// Panics on duplicate saturations.
    pub fn new(mut curves: Vec<TradeoffCurve>) -> Self {
        curves.sort_by(|a, b| {
            a.saturation_qps
                .partial_cmp(&b.saturation_qps)
                .expect("finite saturation")
        });
        assert!(
            curves
                .windows(2)
                .all(|w| w[0].saturation_qps < w[1].saturation_qps),
            "duplicate saturation curves"
        );
        TradeoffTable { curves }
    }

    /// The calibrated curves, sorted by saturation.
    pub fn curves(&self) -> &[TradeoffCurve] {
        &self.curves
    }

    /// True if no calibration data is present.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// Selects α for an observed `saturation_qps`: the nearest calibrated
    /// curve decides (nearest in log-space, since saturations are spaced
    /// multiplicatively: 0.1, 0.13, 0.17, 0.25, 0.5 in the paper).
    ///
    /// # Panics
    /// Panics if the table is empty.
    pub fn select_alpha(&self, saturation_qps: f64, tolerance: f64) -> f64 {
        assert!(!self.curves.is_empty(), "empty trade-off table");
        let sat = saturation_qps.max(1e-9);
        let nearest = self
            .curves
            .iter()
            .min_by(|a, b| {
                let da = (a.saturation_qps.ln() - sat.ln()).abs();
                let db = (b.saturation_qps.ln() - sat.ln()).abs();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("non-empty");
        nearest.select_alpha(tolerance)
    }
}

/// Sliding-window arrival-rate estimator (the live "saturation" signal).
#[derive(Debug, Clone)]
pub struct SaturationEstimator {
    window: SimDuration,
    arrivals: VecDeque<SimTime>,
}

impl SaturationEstimator {
    /// Creates an estimator over a sliding `window`.
    ///
    /// # Panics
    /// Panics on a zero-length window.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        SaturationEstimator {
            window,
            arrivals: VecDeque::new(),
        }
    }

    /// Records a query arrival.
    pub fn observe(&mut self, now: SimTime) {
        self.arrivals.push_back(now);
        self.evict(now);
    }

    /// Arrivals per second over the window ending at `now`.
    pub fn rate_qps(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.arrivals.len() as f64 / self.window.as_secs_f64()
    }

    /// Number of arrivals currently inside the window.
    pub fn count(&self) -> usize {
        self.arrivals.len()
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.as_micros().saturating_sub(self.window.as_micros());
        while let Some(&front) = self.arrivals.front() {
            if front.as_micros() < cutoff {
                self.arrivals.pop_front();
            } else {
                break;
            }
        }
    }
}

/// The adaptive α controller: estimator + table + tolerance.
///
/// "LifeRaft will adaptively tune α based on workload saturation"
/// (Section 3.3). The controller re-selects α at a fixed cadence so the
/// scheduler is not destabilized by per-arrival jitter.
#[derive(Debug, Clone)]
pub struct AlphaController {
    table: TradeoffTable,
    tolerance: f64,
    estimator: SaturationEstimator,
    update_every: SimDuration,
    last_update: Option<SimTime>,
    current_alpha: f64,
}

impl AlphaController {
    /// Creates a controller. `initial_alpha` is used until the first update.
    pub fn new(
        table: TradeoffTable,
        tolerance: f64,
        window: SimDuration,
        update_every: SimDuration,
        initial_alpha: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&tolerance));
        assert!((0.0..=1.0).contains(&initial_alpha));
        AlphaController {
            table,
            tolerance,
            estimator: SaturationEstimator::new(window),
            update_every,
            last_update: None,
            current_alpha: initial_alpha,
        }
    }

    /// Records an arrival (feeds the saturation estimate).
    pub fn on_arrival(&mut self, now: SimTime) {
        self.estimator.observe(now);
    }

    /// The α to use at `now`, re-selected if the update cadence has elapsed.
    pub fn alpha(&mut self, now: SimTime) -> f64 {
        let due = match self.last_update {
            None => true,
            Some(t) => now.since(t) >= self.update_every,
        };
        if due && !self.table.is_empty() {
            let rate = self.estimator.rate_qps(now);
            self.current_alpha = self.table.select_alpha(rate, self.tolerance);
            self.last_update = Some(now);
        }
        self.current_alpha
    }

    /// The most recent saturation estimate.
    pub fn saturation_qps(&mut self, now: SimTime) -> f64 {
        self.estimator.rate_qps(now)
    }
}

/// A [`Scheduler`](crate::scheduler::Scheduler) that retunes a LifeRaft
/// policy's α from live saturation before every decision.
#[derive(Debug, Clone)]
pub struct AdaptiveScheduler {
    inner: crate::liferaft::LifeRaftScheduler,
    controller: AlphaController,
}

impl AdaptiveScheduler {
    /// Wraps a LifeRaft policy with an α controller.
    pub fn new(inner: crate::liferaft::LifeRaftScheduler, controller: AlphaController) -> Self {
        AdaptiveScheduler { inner, controller }
    }

    /// The α currently in force.
    pub fn current_alpha(&self) -> f64 {
        self.inner.alpha()
    }
}

impl crate::scheduler::Scheduler for AdaptiveScheduler {
    fn name(&self) -> String {
        format!("AdaptiveLifeRaft(α={:.2})", self.inner.alpha())
    }

    fn pick(
        &mut self,
        view: &dyn crate::scheduler::SchedulerView,
    ) -> Option<crate::scheduler::BatchSpec> {
        let alpha = self.controller.alpha(view.now());
        self.inner.set_alpha(alpha);
        self.inner.pick(view)
    }

    fn on_query_arrival(&mut self, now: SimTime) {
        self.controller.on_arrival(now);
    }

    fn decision_stats(&self) -> crate::scheduler::DecisionStats {
        self.inner.decision_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(alpha: f64, tput: f64, resp: f64) -> TradeoffPoint {
        TradeoffPoint {
            alpha,
            throughput_qps: tput,
            mean_response_s: resp,
        }
    }

    /// Curves shaped like Figure 4: at low saturation, throughput is nearly
    /// flat in α while response falls steeply; at high saturation throughput
    /// drops steeply with α.
    fn low_curve() -> TradeoffCurve {
        TradeoffCurve::new(
            0.1,
            vec![
                pt(0.0, 0.115, 300.0),
                pt(0.25, 0.112, 220.0),
                pt(0.5, 0.110, 180.0),
                pt(0.75, 0.108, 150.0),
                pt(1.0, 0.107, 138.0),
            ],
        )
    }

    fn high_curve() -> TradeoffCurve {
        TradeoffCurve::new(
            0.5,
            vec![
                pt(0.0, 0.40, 420.0),
                pt(0.25, 0.32, 340.0),
                pt(0.5, 0.24, 320.0),
                pt(0.75, 0.18, 300.0),
                pt(1.0, 0.14, 290.0),
            ],
        )
    }

    #[test]
    fn figure4_selections() {
        // "with an α of 1.0 and 0.25, for low and high saturation
        // respectively, average response time is minimized without
        // sacrificing more than 20% of maximum achievable throughput".
        assert_eq!(low_curve().select_alpha(0.20), 1.0);
        assert_eq!(high_curve().select_alpha(0.20), 0.25);
    }

    #[test]
    fn zero_tolerance_takes_max_throughput_point() {
        assert_eq!(high_curve().select_alpha(0.0), 0.0);
    }

    #[test]
    fn full_tolerance_minimizes_response() {
        assert_eq!(high_curve().select_alpha(1.0), 1.0);
    }

    #[test]
    fn table_picks_nearest_curve_in_log_space() {
        let table = TradeoffTable::new(vec![low_curve(), high_curve()]);
        assert_eq!(table.select_alpha(0.09, 0.20), 1.0); // near 0.1
        assert_eq!(table.select_alpha(0.6, 0.20), 0.25); // near 0.5
                                                         // Geometric midpoint of 0.1 and 0.5 is ~0.224; below it → low curve.
        assert_eq!(table.select_alpha(0.2, 0.20), 1.0);
        assert_eq!(table.select_alpha(0.25, 0.20), 0.25);
    }

    #[test]
    fn estimator_window_semantics() {
        let mut e = SaturationEstimator::new(SimDuration::from_secs(10));
        for s in 0..10u64 {
            e.observe(SimTime::from_micros(s * 1_000_000));
        }
        // 10 arrivals in a 10s window ending at t=9s → 1 qps.
        assert!((e.rate_qps(SimTime::from_micros(9_000_000)) - 1.0).abs() < 1e-9);
        // 11 seconds later, half the arrivals have aged out.
        let later = SimTime::from_micros(15_000_000);
        assert!((e.rate_qps(later) - 0.5).abs() < 1e-9);
        assert_eq!(e.count(), 5);
    }

    #[test]
    fn controller_adapts_to_rate_changes() {
        let table = TradeoffTable::new(vec![low_curve(), high_curve()]);
        let mut c = AlphaController::new(
            table,
            0.20,
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            0.5,
        );
        // Slow arrivals: 0.1 qps → α = 1.0.
        let mut now = SimTime::ZERO;
        for i in 0..10u64 {
            now = SimTime::from_micros(i * 10_000_000);
            c.on_arrival(now);
        }
        assert_eq!(c.alpha(now), 1.0);
        // Burst: 0.5 qps over the next window → α = 0.25 after cadence.
        let burst_start = now.as_micros();
        for i in 0..50u64 {
            now = SimTime::from_micros(burst_start + (i + 1) * 2_000_000);
            c.on_arrival(now);
        }
        assert_eq!(c.alpha(now), 0.25);
    }

    #[test]
    fn controller_holds_alpha_between_updates() {
        let table = TradeoffTable::new(vec![low_curve()]);
        let mut c = AlphaController::new(
            table,
            0.2,
            SimDuration::from_secs(100),
            SimDuration::from_secs(60),
            0.5,
        );
        // First call updates (from initial 0.5 to 1.0), second is cached.
        assert_eq!(c.alpha(SimTime::ZERO), 1.0);
        c.on_arrival(SimTime::from_micros(1));
        assert_eq!(c.alpha(SimTime::from_micros(2)), 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate α")]
    fn curve_rejects_duplicate_alphas() {
        TradeoffCurve::new(0.1, vec![pt(0.5, 1.0, 1.0), pt(0.5, 2.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate saturation")]
    fn table_rejects_duplicate_saturations() {
        TradeoffTable::new(vec![low_curve(), low_curve()]);
    }

    #[test]
    #[should_panic(expected = "empty trade-off table")]
    fn empty_table_select_panics() {
        TradeoffTable::default().select_alpha(0.1, 0.2);
    }
}
