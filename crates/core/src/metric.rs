//! The workload throughput metric (Eq. 1) and its aged variant (Eq. 2).

use liferaft_storage::CostModel;

use crate::scheduler::BucketSnapshot;
use liferaft_storage::SimTime;

/// Cost parameters of the metric: the paper's `Tb` and `Tm`, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricParams {
    /// Bucket read cost in milliseconds.
    pub tb_ms: f64,
    /// Per-object match cost in milliseconds.
    pub tm_ms: f64,
}

impl MetricParams {
    /// Extracts the metric constants from a [`CostModel`].
    pub fn from_cost(cost: &CostModel) -> Self {
        MetricParams {
            tb_ms: cost.tb.as_millis_f64(),
            tm_ms: cost.tm.as_millis_f64(),
        }
    }

    /// The paper's constants: Tb = 1200 ms, Tm = 0.13 ms.
    pub fn paper() -> Self {
        Self::from_cost(&CostModel::paper())
    }

    /// Eq. 1: `Ut(i) = W / (Tb·φ(i) + Tm·W)`, in objects per millisecond.
    ///
    /// `φ(i)` is 0 when the bucket is cached and 1 otherwise; an empty queue
    /// scores 0 (nothing to consume).
    ///
    /// ```
    /// use liferaft_core::MetricParams;
    ///
    /// let m = MetricParams::paper();
    /// // Deeper queues amortize the bucket read: strictly higher throughput.
    /// assert!(m.workload_throughput(100, false) > m.workload_throughput(10, false));
    /// // A cache hit drops the Tb term entirely and caps out at 1/Tm.
    /// let cached = m.workload_throughput(50, true);
    /// assert!((cached - m.max_throughput()).abs() < 1e-12 * m.max_throughput());
    /// assert_eq!(m.workload_throughput(0, false), 0.0);
    /// ```
    pub fn workload_throughput(&self, queue_len: u64, cached: bool) -> f64 {
        if queue_len == 0 {
            return 0.0;
        }
        let w = queue_len as f64;
        let phi = if cached { 0.0 } else { 1.0 };
        w / (self.tb_ms * phi + self.tm_ms * w)
    }

    /// Upper bound of Eq. 1: a cached bucket consumes `1/Tm` objects per ms
    /// regardless of queue length.
    pub fn max_throughput(&self) -> f64 {
        1.0 / self.tm_ms
    }
}

/// How the age term is combined with the throughput term in Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgingMode {
    /// Min–max normalize both `Ut` and `A` over the candidate set before
    /// blending (our default; see DESIGN.md §2 — the paper's raw sum mixes
    /// objects/ms with milliseconds, letting age dominate for any α > 0).
    Normalized,
    /// The paper's Eq. 2 verbatim: `Ua = Ut·(1−α) + A·α` on raw values.
    /// Kept for the ablation bench.
    Raw,
}

/// A prepared scoring pass over one candidate set: the min–max bounds of
/// both metric terms, computed in a single sweep so individual scores can
/// then be evaluated on the fly — no per-decision vectors of `Ut` and `A`.
///
/// The normalization conventions match
/// [`min_max_normalize`](liferaft_metrics::min_max_normalize) exactly (a
/// constant term maps to all-zeros), so fused scoring is bit-identical to
/// the materialized [`aged_scores`] path.
#[derive(Debug, Clone, Copy)]
pub struct ScorePass {
    params: MetricParams,
    mode: AgingMode,
    alpha: f64,
    now: SimTime,
    ut_lo: f64,
    ut_span: f64,
    age_lo: f64,
    age_span: f64,
}

impl ScorePass {
    /// Prepares a pass over `candidates` at time `now`.
    ///
    /// # Panics
    /// Panics if α is outside `[0, 1]` or a metric term is NaN (an upstream
    /// accounting bug, mirroring `liferaft_metrics::bounds`).
    pub fn new(
        params: &MetricParams,
        mode: AgingMode,
        alpha: f64,
        now: SimTime,
        candidates: &[BucketSnapshot],
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "α must be in [0,1], got {alpha}"
        );
        let mut pass = ScorePass {
            params: *params,
            mode,
            alpha,
            now,
            ut_lo: 0.0,
            ut_span: 0.0,
            age_lo: 0.0,
            age_span: 0.0,
        };
        if mode == AgingMode::Normalized && !candidates.is_empty() {
            let (mut ut_lo, mut ut_hi) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut age_lo, mut age_hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for c in candidates {
                let ut = params.workload_throughput(c.queue_len, c.cached);
                let age = c.age_ms(now);
                assert!(!ut.is_nan() && !age.is_nan(), "metric term is NaN");
                ut_lo = ut_lo.min(ut);
                ut_hi = ut_hi.max(ut);
                age_lo = age_lo.min(age);
                age_hi = age_hi.max(age);
            }
            pass.ut_lo = ut_lo;
            pass.ut_span = ut_hi - ut_lo;
            pass.age_lo = age_lo;
            pass.age_span = age_hi - age_lo;
        }
        pass
    }

    /// Eq. 2's score of one candidate from the prepared set.
    #[inline]
    pub fn score(&self, c: &BucketSnapshot) -> f64 {
        let u = self.ut_term(c);
        let a = self.age_term(c);
        u * (1.0 - self.alpha) + a * self.alpha
    }

    /// The throughput term of one candidate — `Ut` raw, or min–max
    /// normalized over the prepared set. Exposed so indexed pick paths can
    /// form score *upper bounds* from frontier candidates.
    #[inline]
    pub fn ut_term(&self, c: &BucketSnapshot) -> f64 {
        let ut = self.params.workload_throughput(c.queue_len, c.cached);
        match self.mode {
            AgingMode::Raw => ut,
            AgingMode::Normalized => normalized(ut, self.ut_lo, self.ut_span),
        }
    }

    /// The age term of one candidate — `A` raw, or min–max normalized over
    /// the prepared set.
    #[inline]
    pub fn age_term(&self, c: &BucketSnapshot) -> f64 {
        let age = c.age_ms(self.now);
        match self.mode {
            AgingMode::Raw => age,
            AgingMode::Normalized => normalized(age, self.age_lo, self.age_span),
        }
    }

    /// The bias the pass was prepared with.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// `min_max_normalize`'s per-value rule: constant slices map to zero.
#[inline]
fn normalized(v: f64, lo: f64, span: f64) -> f64 {
    if span <= 0.0 {
        0.0
    } else {
        (v - lo) / span
    }
}

/// Scores every candidate with the aged workload throughput metric.
///
/// Returns one score per snapshot, aligned with the input order. The caller
/// picks the maximum (ties are the caller's policy). Allocation-sensitive
/// callers should use [`aged_scores_into`] with a reused buffer instead.
pub fn aged_scores(
    params: &MetricParams,
    mode: AgingMode,
    alpha: f64,
    now: SimTime,
    candidates: &[BucketSnapshot],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(candidates.len());
    aged_scores_into(params, mode, alpha, now, candidates, &mut out);
    out
}

/// Scores every candidate into `out` (cleared first) without allocating
/// beyond `out`'s growth — the scratch-buffer variant of [`aged_scores`].
pub fn aged_scores_into(
    params: &MetricParams,
    mode: AgingMode,
    alpha: f64,
    now: SimTime,
    candidates: &[BucketSnapshot],
    out: &mut Vec<f64>,
) {
    let pass = ScorePass::new(params, mode, alpha, now, candidates);
    out.clear();
    out.extend(candidates.iter().map(|c| pass.score(c)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::{BucketId, SimDuration};

    fn snap(bucket: u32, queue_len: u64, age_ms: u64, cached: bool) -> (BucketSnapshot, SimTime) {
        let now = SimTime::ZERO + SimDuration::from_secs(100);
        let s = BucketSnapshot {
            bucket: BucketId(bucket),
            queue_len,
            oldest_enqueue: SimTime::from_micros(100_000_000 - age_ms * 1_000),
            cached,
            bucket_objects: 10_000,
        };
        (s, now)
    }

    #[test]
    fn eq1_known_values() {
        let p = MetricParams {
            tb_ms: 1200.0,
            tm_ms: 0.13,
        };
        // W=1000, uncached: 1000 / (1200 + 130) ≈ 0.7519 objects/ms.
        let ut = p.workload_throughput(1000, false);
        assert!((ut - 1000.0 / 1330.0).abs() < 1e-12);
        // Cached: 1000 / 130 = 1/Tm.
        let cached = p.workload_throughput(1000, true);
        assert!((cached - p.max_throughput()).abs() < 1e-12);
    }

    #[test]
    fn eq1_monotone_in_queue_length_when_uncached() {
        let p = MetricParams::paper();
        let mut last = 0.0;
        for w in [1u64, 10, 100, 1_000, 10_000] {
            let ut = p.workload_throughput(w, false);
            assert!(ut > last);
            last = ut;
        }
        assert_eq!(p.workload_throughput(0, false), 0.0);
    }

    #[test]
    fn cached_buckets_always_beat_uncached() {
        let p = MetricParams::paper();
        // Even a 1-object cached queue outranks a 10 000-object uncached one.
        assert!(p.workload_throughput(1, true) > p.workload_throughput(10_000, false));
    }

    #[test]
    fn alpha_zero_is_pure_throughput() {
        let p = MetricParams::paper();
        let (a, now) = snap(0, 10_000, 0, false);
        let (b, _) = snap(1, 10, 99_000, false); // ancient but tiny queue
        let scores = aged_scores(&p, AgingMode::Normalized, 0.0, now, &[a, b]);
        assert!(scores[0] > scores[1], "greedy must prefer contention");
    }

    #[test]
    fn alpha_one_is_pure_age() {
        let p = MetricParams::paper();
        let (a, now) = snap(0, 10_000, 10, false);
        let (b, _) = snap(1, 1, 90_000, false);
        let scores = aged_scores(&p, AgingMode::Normalized, 1.0, now, &[a, b]);
        assert!(scores[1] > scores[0], "α=1 must prefer the oldest request");
    }

    #[test]
    fn intermediate_alpha_blends() {
        let p = MetricParams::paper();
        let (a, now) = snap(0, 10_000, 0, false);
        let (b, _) = snap(1, 1, 90_000, false);
        // A long-queue young bucket vs a short-queue old bucket: as α rises
        // the old bucket must eventually win, with a crossover in between.
        let pick = |alpha: f64| {
            let s = aged_scores(&p, AgingMode::Normalized, alpha, now, &[a, b]);
            if s[0] >= s[1] {
                0
            } else {
                1
            }
        };
        assert_eq!(pick(0.0), 0);
        assert_eq!(pick(1.0), 1);
        let crossover = (1..=9).map(|k| pick(k as f64 / 10.0)).collect::<Vec<_>>();
        assert!(
            crossover.windows(2).all(|w| w[0] <= w[1]),
            "one-way crossover"
        );
    }

    #[test]
    fn raw_mode_lets_age_dominate() {
        // Documented pathology of the verbatim Eq. 2: with raw units even a
        // tiny α makes milliseconds of age dwarf objects/ms of throughput.
        let p = MetricParams::paper();
        let (a, now) = snap(0, 10_000, 100, false);
        let (b, _) = snap(1, 1, 5_000, false);
        let scores = aged_scores(&p, AgingMode::Raw, 0.05, now, &[a, b]);
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn empty_candidates_yield_empty_scores() {
        let p = MetricParams::paper();
        assert!(aged_scores(&p, AgingMode::Normalized, 0.5, SimTime::ZERO, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "α must be in")]
    fn alpha_out_of_range_panics() {
        let p = MetricParams::paper();
        aged_scores(&p, AgingMode::Normalized, 1.5, SimTime::ZERO, &[]);
    }

    /// The fused pass must agree bit-for-bit with materializing both term
    /// vectors and normalizing them via `liferaft_metrics`.
    #[test]
    fn fused_pass_matches_materialized_scoring_exactly() {
        let p = MetricParams::paper();
        let now = SimTime::ZERO + SimDuration::from_secs(100);
        let cands: Vec<BucketSnapshot> = (0..17)
            .map(|i| {
                snap(
                    i,
                    (i as u64 * 37) % 900 + 1,
                    (i as u64 * 7_993) % 90_000,
                    i % 5 == 0,
                )
                .0
            })
            .collect();
        for mode in [AgingMode::Normalized, AgingMode::Raw] {
            for alpha in [0.0, 0.25, 0.5, 1.0] {
                let mut ut: Vec<f64> = cands
                    .iter()
                    .map(|c| p.workload_throughput(c.queue_len, c.cached))
                    .collect();
                let mut age: Vec<f64> = cands.iter().map(|c| c.age_ms(now)).collect();
                if mode == AgingMode::Normalized {
                    liferaft_metrics::min_max_normalize(&mut ut);
                    liferaft_metrics::min_max_normalize(&mut age);
                }
                let reference: Vec<f64> = ut
                    .iter()
                    .zip(&age)
                    .map(|(&u, &a)| u * (1.0 - alpha) + a * alpha)
                    .collect();
                let fused = aged_scores(&p, mode, alpha, now, &cands);
                for (f, r) in fused.iter().zip(&reference) {
                    assert_eq!(f.to_bits(), r.to_bits(), "mode {mode:?} α={alpha}");
                }
            }
        }
    }

    #[test]
    fn scores_into_reuses_the_buffer() {
        let p = MetricParams::paper();
        let (a, now) = snap(0, 10, 5, false);
        let mut out = vec![99.0; 8];
        aged_scores_into(&p, AgingMode::Normalized, 0.3, now, &[a], &mut out);
        assert_eq!(out.len(), 1);
    }
}
