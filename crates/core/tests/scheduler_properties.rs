//! Property tests for the LifeRaft scheduling policy.

use liferaft_core::scheduler::FixtureView;
use liferaft_core::{
    AgingMode, BucketSnapshot, LifeRaftScheduler, MetricParams, RoundRobinScheduler, Scheduler,
};
use liferaft_storage::{BucketId, SimTime};
use proptest::prelude::*;

fn arb_candidates() -> impl Strategy<Value = Vec<BucketSnapshot>> {
    proptest::collection::vec(
        (
            0u32..500,
            1u64..5_000,
            0u64..1_000_000u64,
            proptest::bool::ANY,
        ),
        1..40,
    )
    .prop_map(|raw| {
        let mut cands: Vec<BucketSnapshot> = raw
            .into_iter()
            .map(|(b, q, enq, cached)| BucketSnapshot {
                bucket: BucketId(b),
                queue_len: q,
                oldest_enqueue: SimTime::from_micros(enq),
                cached,
                bucket_objects: 1_000,
            })
            .collect();
        cands.sort_by_key(|c| c.bucket);
        cands.dedup_by_key(|c| c.bucket);
        cands
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The scheduler always picks one of the candidates, for any α.
    #[test]
    fn pick_is_always_a_candidate(
        cands in arb_candidates(),
        alpha in 0.0..=1.0f64,
    ) {
        let now = SimTime::from_micros(2_000_000);
        let s = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, alpha);
        let idx = s.pick_index(now, &cands).expect("non-empty candidates");
        prop_assert!(idx < cands.len());
    }

    /// α = 1 services the bucket holding the oldest request (modulo exact
    /// timestamp ties).
    #[test]
    fn alpha_one_picks_oldest(cands in arb_candidates()) {
        let now = SimTime::from_micros(2_000_000);
        let s = LifeRaftScheduler::age_based(MetricParams::paper());
        let idx = s.pick_index(now, &cands).expect("non-empty");
        let oldest = cands.iter().map(|c| c.oldest_enqueue).min().expect("non-empty");
        prop_assert_eq!(
            cands[idx].oldest_enqueue, oldest,
            "picked {:?}, oldest {:?}", cands[idx], oldest
        );
    }

    /// α = 0 always prefers a cached bucket when one exists: φ = 0 puts
    /// cached queues at the metric's ceiling (1/Tm).
    #[test]
    fn alpha_zero_prefers_cached(cands in arb_candidates()) {
        let now = SimTime::from_micros(2_000_000);
        let s = LifeRaftScheduler::greedy(MetricParams::paper());
        let idx = s.pick_index(now, &cands).expect("non-empty");
        if cands.iter().any(|c| c.cached) {
            prop_assert!(cands[idx].cached, "greedy must ride the cache");
        } else {
            // Among uncached queues, the longest wins.
            let max_q = cands.iter().map(|c| c.queue_len).max().expect("non-empty");
            prop_assert_eq!(cands[idx].queue_len, max_q);
        }
    }

    /// The pick is deterministic: same view, same decision.
    #[test]
    fn pick_is_deterministic(cands in arb_candidates(), alpha in 0.0..=1.0f64) {
        let now = SimTime::from_micros(3_000_000);
        let s = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, alpha);
        prop_assert_eq!(s.pick_index(now, &cands), s.pick_index(now, &cands));
    }

    /// Candidate order must not affect the decision (no positional bias):
    /// scoring is a function of the snapshot contents only.
    #[test]
    fn pick_is_order_invariant(cands in arb_candidates(), alpha in 0.0..=1.0f64) {
        let now = SimTime::from_micros(3_000_000);
        let s = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, alpha);
        let a = cands[s.pick_index(now, &cands).expect("non-empty")];
        let mut rev: Vec<BucketSnapshot> = cands.clone();
        rev.reverse();
        let b = rev[s.pick_index(now, &rev).expect("non-empty")];
        prop_assert_eq!(a.bucket, b.bucket);
    }

    /// The fused, allocation-free pick must agree with a reference
    /// implementation that materializes the score vector and applies the
    /// pre-refactor `>`/`==` comparison chain.
    #[test]
    fn fused_pick_matches_materialized_reference(
        cands in arb_candidates(),
        alpha in 0.0..=1.0f64,
    ) {
        let now = SimTime::from_micros(2_000_000);
        let params = MetricParams::paper();
        let s = LifeRaftScheduler::new(params, AgingMode::Normalized, alpha);
        let idx = s.pick_index(now, &cands).expect("non-empty");
        let scores =
            liferaft_core::metric::aged_scores(&params, AgingMode::Normalized, alpha, now, &cands);
        let mut best = 0usize;
        for i in 1..cands.len() {
            let better = scores[i] > scores[best]
                || (scores[i] == scores[best]
                    && (cands[i].queue_len > cands[best].queue_len
                        || (cands[i].queue_len == cands[best].queue_len
                            && cands[i].bucket < cands[best].bucket)));
            if better {
                best = i;
            }
        }
        prop_assert_eq!(idx, best);
    }

    /// The indexed pick (lens extremes at α ∈ {0, 1}, threshold frontier
    /// scan in between) through a view must equal the legacy
    /// full-materialization `pick_index`, for any α and either aging mode.
    #[test]
    fn view_pick_matches_pick_index(
        cands in arb_candidates(),
        random_alpha in 0.0..=1.0f64,
    ) {
        let now = SimTime::from_micros(2_000_000);
        let view = FixtureView {
            now,
            candidates: cands.clone(),
            oldest_query: None,
            query_buckets: vec![],
        };
        for mode in [AgingMode::Normalized, AgingMode::Raw] {
            for alpha in [0.0, 0.25, 0.5, random_alpha, 1.0] {
                let mut s = LifeRaftScheduler::new(MetricParams::paper(), mode, alpha);
                let legacy = cands[s.pick_index(now, &cands).expect("non-empty")];
                let picked = s.pick(&view).expect("non-empty");
                prop_assert_eq!(picked.bucket, legacy.bucket, "mode {:?} α={}", mode, alpha);
            }
        }
    }

    /// Round-robin visits every candidate exactly once per rotation when
    /// the candidate set is stable.
    #[test]
    fn round_robin_is_fair_over_a_rotation(cands in arb_candidates()) {
        let mut rr = RoundRobinScheduler::new();
        let view = FixtureView {
            now: SimTime::from_micros(1),
            candidates: cands.clone(),
            oldest_query: None,
            query_buckets: vec![],
        };
        let mut seen = Vec::new();
        for _ in 0..cands.len() {
            let pick = rr.pick(&view).expect("non-empty");
            prop_assert!(
                cands.iter().any(|c| c.bucket == pick.bucket),
                "picked bucket must be a candidate"
            );
            seen.push(pick.bucket);
        }
        let mut expected: Vec<BucketId> = cands.iter().map(|c| c.bucket).collect();
        seen.sort();
        expected.sort();
        prop_assert_eq!(seen, expected, "one full rotation covers each bucket once");
    }
}
