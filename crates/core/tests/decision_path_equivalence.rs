//! The decision-path equivalence pin: for every scheduler and every α, the
//! pick made through the **candidate index** (a view over the live
//! `WorkloadTable`, φ synced via the residency mutation log) must equal the
//! pick made through the **legacy path** (`snapshots_into` gather + scan
//! over the materialized slice) — across arbitrary interleavings of
//! enqueues, full/per-query drains, and cache accesses/evictions/flushes.
//!
//! This is the contract that lets `tests/golden_determinism.rs` keep its
//! pre-refactor fingerprints: if these picks agree everywhere, the engines
//! built on them are bit-identical.

use std::collections::{BTreeSet, HashMap};

use liferaft_core::adaptive::{TradeoffCurve, TradeoffPoint};
use liferaft_core::scheduler::FixtureView;
use liferaft_core::{
    AdaptiveScheduler, AgingMode, AlphaController, IndexedSchedulerView, LifeRaftScheduler,
    MetricParams, NoShareScheduler, RoundRobinScheduler, Scheduler, TradeoffTable,
};
use liferaft_htm::Vec3;
use liferaft_query::{CrossMatchQuery, Predicate, QueryId, WorkItem, WorkloadTable};
use liferaft_storage::{BucketCache, BucketId, SimTime};
use proptest::prelude::*;

const N_BUCKETS: usize = 24;
const CACHE_CAP: usize = 4;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Enqueue `n` objects of `query` at `bucket`.
    Enqueue { bucket: u32, query: u64, n: u8 },
    /// Drain everything at `bucket`.
    TakeAll { bucket: u32 },
    /// Drain one query's entries at `bucket`.
    TakeQuery { bucket: u32, query: u64 },
    /// A batch executed against `bucket`: cache access (hit or load+evict).
    CacheAccess { bucket: u32 },
    /// Flush the cache (truncates the mutation log: full re-probe path).
    CacheClear,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..8, 0u32..N_BUCKETS as u32, 0u64..6, 1u8..5), 1..80).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, bucket, query, n)| match kind {
                    0..=2 => Op::Enqueue { bucket, query, n },
                    3 => Op::TakeAll { bucket },
                    4 => Op::TakeQuery { bucket, query },
                    5 | 6 => Op::CacheAccess { bucket },
                    _ => Op::CacheClear,
                })
                .collect()
        },
    )
}

fn query_of(id: u64, n: usize, salt: u64) -> CrossMatchQuery {
    let positions: Vec<Vec3> = (0..n)
        .map(|i| Vec3::from_radec_deg(10.0 + (salt % 89) as f64 + i as f64 * 0.01, 5.0))
        .collect();
    CrossMatchQuery::from_positions(QueryId(id), &positions, 1e-5, 6, Predicate::All)
}

/// The indexed view: the blanket [`IndexedSchedulerView`] impl gives it the
/// exact candidate dispatch the engine's decision loop uses.
struct IndexedView<'s> {
    now: SimTime,
    table: &'s WorkloadTable,
    oldest_query: Option<(QueryId, SimTime)>,
    per_query: &'s HashMap<QueryId, BTreeSet<BucketId>>,
}

impl IndexedSchedulerView for IndexedView<'_> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn table(&self) -> &WorkloadTable {
        self.table
    }
    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)> {
        self.oldest_query
    }
    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId> {
        self.per_query
            .get(&query)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }
}

/// Fresh schedulers for one comparison round. RR and the adaptive wrapper
/// are stateful, so the harness keeps a pair per side and steps them in
/// lockstep instead.
fn stateless_schedulers() -> Vec<Box<dyn Scheduler>> {
    let mut v: Vec<Box<dyn Scheduler>> = vec![Box::new(NoShareScheduler::new())];
    for mode in [AgingMode::Normalized, AgingMode::Raw] {
        for alpha in [0.0, 0.25, 0.5, 1.0] {
            v.push(Box::new(LifeRaftScheduler::new(
                MetricParams::paper(),
                mode,
                alpha,
            )));
        }
    }
    v
}

fn adaptive() -> AdaptiveScheduler {
    let pt = |alpha, tput, resp| TradeoffPoint {
        alpha,
        throughput_qps: tput,
        mean_response_s: resp,
    };
    let table = TradeoffTable::new(vec![
        TradeoffCurve::new(0.1, vec![pt(0.0, 0.115, 300.0), pt(1.0, 0.107, 138.0)]),
        TradeoffCurve::new(0.5, vec![pt(0.0, 0.40, 420.0), pt(0.25, 0.32, 340.0)]),
    ]);
    let controller = AlphaController::new(
        table,
        0.20,
        liferaft_storage::SimDuration::from_secs(60),
        liferaft_storage::SimDuration::from_secs(5),
        0.5,
    );
    AdaptiveScheduler::new(
        LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, 0.5),
        controller,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Index pick == legacy gather+scan pick, for every policy, at every
    /// step of a random enqueue/drain/evict interleaving.
    #[test]
    fn indexed_and_legacy_picks_agree(ops in arb_ops()) {
        let mut table = WorkloadTable::new(N_BUCKETS).with_object_counts(|b| 500 + b.0 as u64);
        let mut cache = BucketCache::new(CACHE_CAP);
        let mut per_query: HashMap<QueryId, BTreeSet<BucketId>> = HashMap::new();
        let mut arrival_of: HashMap<QueryId, SimTime> = HashMap::new();
        let mut rr_indexed = RoundRobinScheduler::new();
        let mut rr_legacy = RoundRobinScheduler::new();
        let mut adaptive_pair = (adaptive(), adaptive());
        let mut snaps = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            let now = SimTime::from_micros(step as u64 * 1_000 + 1);
            match *op {
                Op::Enqueue { bucket, query, n } => {
                    let q = query_of(query, n as usize, step as u64);
                    let item = WorkItem {
                        query: q.id,
                        bucket: BucketId(bucket),
                        object_indices: (0..q.len() as u32).collect(),
                    };
                    table.enqueue(&item, &q, now);
                    per_query.entry(q.id).or_default().insert(BucketId(bucket));
                    arrival_of.entry(q.id).or_insert(now);
                }
                Op::TakeAll { bucket } => {
                    let mut drained = Vec::new();
                    table.take_all_into(BucketId(bucket), &mut drained);
                    for e in drained {
                        if let Some(set) = per_query.get_mut(&e.query) {
                            set.remove(&BucketId(bucket));
                        }
                    }
                }
                Op::TakeQuery { bucket, query } => {
                    let mut drained = Vec::new();
                    table.take_query_into(BucketId(bucket), QueryId(query), &mut drained);
                    if !drained.is_empty() {
                        if let Some(set) = per_query.get_mut(&QueryId(query)) {
                            set.remove(&BucketId(bucket));
                        }
                    }
                }
                Op::CacheAccess { bucket } => {
                    cache.access(BucketId(bucket));
                }
                Op::CacheClear => cache.clear(),
            }
            per_query.retain(|_, set| !set.is_empty());

            // One decision point per step, through both paths.
            table.sync_residency(&cache);
            table.validate_index();
            table.snapshots_into(&mut snaps, &cache);
            let oldest_query = per_query
                .keys()
                .map(|&q| (arrival_of[&q], q))
                .min()
                .map(|(t, q)| (q, t));
            let legacy_view = FixtureView {
                now,
                candidates: snaps.clone(),
                oldest_query,
                query_buckets: per_query
                    .iter()
                    .map(|(&q, set)| (q, set.iter().copied().collect()))
                    .collect(),
            };
            let indexed_view = IndexedView {
                now,
                table: &table,
                oldest_query,
                per_query: &per_query,
            };

            for s in &mut stateless_schedulers() {
                let legacy = s.pick(&legacy_view);
                let indexed = s.pick(&indexed_view);
                prop_assert_eq!(
                    legacy, indexed,
                    "{} diverged at step {} ({} candidates)",
                    s.name(), step, snaps.len()
                );
            }

            // The adaptive wrapper retunes α then delegates to LifeRaft;
            // both sides see the same arrivals, so lockstep picks agree.
            {
                let a = adaptive_pair.0.pick(&indexed_view);
                let b = adaptive_pair.1.pick(&legacy_view);
                prop_assert_eq!(a, b, "Adaptive diverged at step {}", step);
            }

            // LifeRaft vs the pre-refactor pick_index over the gathered
            // slice — the strongest form of the claim.
            for mode in [AgingMode::Normalized, AgingMode::Raw] {
                for alpha in [0.0, 0.25, 0.5, 1.0] {
                    let mut s = LifeRaftScheduler::new(MetricParams::paper(), mode, alpha);
                    let via_index = s.pick(&indexed_view).map(|spec| spec.bucket);
                    let via_slice = s.pick_index(now, &snaps).map(|i| snaps[i].bucket);
                    prop_assert_eq!(
                        via_index, via_slice,
                        "LifeRaft mode {:?} α={} diverged from pick_index at step {}",
                        mode, alpha, step
                    );
                }
            }

            // RR: stateful cursor, stepped in lockstep on both sides.
            if !snaps.is_empty() {
                let a = rr_indexed.pick(&indexed_view);
                let b = rr_legacy.pick(&legacy_view);
                prop_assert_eq!(a, b, "RR diverged at step {}", step);
                prop_assert_eq!(rr_indexed.cursor(), rr_legacy.cursor());
            }
        }
    }
}
