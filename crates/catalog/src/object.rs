//! Catalog rows: celestial objects.

use liferaft_htm::{HtmId, Vec3};

/// One catalog row: an observed celestial object.
///
/// The paper's cross-match operates on point data carrying "its mean
/// cartesian coordinate and a range of HTM ID values" — the catalog side of
/// the join needs only the position, its HTM index (the sort key of the
/// bucket layout), and a magnitude for query-specific predicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyObject {
    /// HTM ID of the object at the catalog's object level.
    pub htm: HtmId,
    /// Unit vector position on the celestial sphere.
    pub pos: Vec3,
    /// Apparent magnitude (brightness; larger is fainter). Used by
    /// query-specific predicates applied after the spatial join.
    pub mag: f32,
}

impl SkyObject {
    /// Creates an object, indexing the position at `level`.
    pub fn at(pos: Vec3, level: u8, mag: f32) -> Self {
        SkyObject {
            htm: liferaft_htm::locate(pos, level),
            pos,
            mag,
        }
    }
}

/// Sorts objects by HTM ID — the catalog's physical layout order.
pub fn sort_by_htm(objects: &mut [SkyObject]) {
    objects.sort_unstable_by_key(|o| o.htm);
}

/// Verifies a slice is HTM-sorted (debug invariant for bucket payloads).
pub fn is_htm_sorted(objects: &[SkyObject]) -> bool {
    objects.windows(2).all(|w| w[0].htm <= w[1].htm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_indexes_position() {
        let pos = Vec3::from_radec_deg(15.0, -30.0);
        let o = SkyObject::at(pos, 10, 18.5);
        assert_eq!(o.htm.level(), 10);
        assert_eq!(o.htm, liferaft_htm::locate(pos, 10));
        assert_eq!(o.mag, 18.5);
    }

    #[test]
    fn sorting_orders_by_curve() {
        let mut objs: Vec<SkyObject> = [(200.0, 10.0), (10.0, 10.0), (100.0, -50.0)]
            .iter()
            .map(|&(ra, dec)| SkyObject::at(Vec3::from_radec_deg(ra, dec), 8, 20.0))
            .collect();
        assert!(!is_htm_sorted(&objs) || objs.len() < 2);
        sort_by_htm(&mut objs);
        assert!(is_htm_sorted(&objs));
    }

    #[test]
    fn empty_and_singleton_are_sorted() {
        assert!(is_htm_sorted(&[]));
        let o = SkyObject::at(Vec3::from_radec_deg(0.0, 0.0), 5, 1.0);
        assert!(is_htm_sorted(&[o]));
    }
}
