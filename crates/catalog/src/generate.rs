//! Synthetic sky generation.
//!
//! Two generators feed the [`MaterializedCatalog`](crate::MaterializedCatalog):
//! a uniform sky (density-flat, exercises the partitioner's equal-count
//! guarantee) and a clustered sky (galaxy-cluster-style hotspots, exercises
//! the partitioner under the skew that makes equal-*area* partitioning fail
//! and motivates equal-*count* buckets in the first place).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use liferaft_htm::Vec3;

use crate::object::{sort_by_htm, SkyObject};

/// Draws a uniformly distributed point on the unit sphere.
///
/// Uniform in area: z uniform in [−1, 1], azimuth uniform in [0, 2π).
pub fn uniform_point<R: Rng>(rng: &mut R) -> Vec3 {
    let z: f64 = rng.gen_range(-1.0..1.0);
    let ra: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    Vec3::from_radec(ra, z.asin())
}

/// Draws a point near `center` with angular Gaussian spread `sigma` radians.
///
/// Offsets in the local tangent plane, then renormalizes — accurate for the
/// small sigmas (≤ a few degrees) used for cluster cores.
pub fn clustered_point<R: Rng>(rng: &mut R, center: Vec3, sigma: f64) -> Vec3 {
    // Box–Muller for two independent normals.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt() * sigma;
    let theta = std::f64::consts::TAU * u2;
    let (dx, dy) = (r * theta.cos(), r * theta.sin());
    // Build an orthonormal tangent basis at `center`.
    let helper = if center.z.abs() < 0.9 {
        Vec3::NORTH
    } else {
        Vec3::new(1.0, 0.0, 0.0)
    };
    let e1 = center.cross(helper).normalized();
    let e2 = center.cross(e1).normalized();
    (center + e1.scale(dx) + e2.scale(dy)).normalized()
}

/// Generates `n` objects uniformly over the sphere, HTM-sorted.
pub fn uniform_sky(n: usize, level: u8, seed: u64) -> Vec<SkyObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut objects: Vec<SkyObject> = (0..n)
        .map(|_| {
            let pos = uniform_point(&mut rng);
            let mag = rng.gen_range(14.0f32..24.0);
            SkyObject::at(pos, level, mag)
        })
        .collect();
    sort_by_htm(&mut objects);
    objects
}

/// Parameters of a clustered sky.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of cluster centers, uniformly placed.
    pub clusters: usize,
    /// Angular spread of each cluster (radians).
    pub sigma: f64,
    /// Fraction of objects belonging to clusters (rest are uniform field).
    pub cluster_fraction: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            clusters: 16,
            sigma: 0.02,
            cluster_fraction: 0.7,
        }
    }
}

/// Generates `n` objects with galaxy-cluster-like density skew, HTM-sorted.
pub fn clustered_sky(n: usize, level: u8, seed: u64, cfg: ClusterConfig) -> Vec<SkyObject> {
    assert!(
        (0.0..=1.0).contains(&cfg.cluster_fraction),
        "cluster_fraction must be in [0,1]"
    );
    assert!(cfg.clusters > 0 || cfg.cluster_fraction == 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec3> = (0..cfg.clusters).map(|_| uniform_point(&mut rng)).collect();
    let mut objects: Vec<SkyObject> = (0..n)
        .map(|_| {
            let pos = if !centers.is_empty() && rng.gen_bool(cfg.cluster_fraction) {
                let c = centers[rng.gen_range(0..centers.len())];
                clustered_point(&mut rng, c, cfg.sigma)
            } else {
                uniform_point(&mut rng)
            };
            let mag = rng.gen_range(14.0f32..24.0);
            SkyObject::at(pos, level, mag)
        })
        .collect();
    sort_by_htm(&mut objects);
    objects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::is_htm_sorted;

    #[test]
    fn uniform_sky_is_sorted_and_unit() {
        let sky = uniform_sky(500, 10, 42);
        assert_eq!(sky.len(), 500);
        assert!(is_htm_sorted(&sky));
        for o in &sky {
            assert!((o.pos.norm() - 1.0).abs() < 1e-9);
            assert!((14.0..24.0).contains(&o.mag));
        }
    }

    #[test]
    fn uniform_sky_is_deterministic_per_seed() {
        let a = uniform_sky(100, 10, 7);
        let b = uniform_sky(100, 10, 7);
        let c = uniform_sky(100, 10, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_sky_covers_both_hemispheres() {
        let sky = uniform_sky(2_000, 8, 1);
        let north = sky.iter().filter(|o| o.pos.z > 0.0).count();
        let frac = north as f64 / sky.len() as f64;
        assert!((0.42..0.58).contains(&frac), "north fraction {frac}");
    }

    #[test]
    fn clustered_sky_is_skewed() {
        let cfg = ClusterConfig {
            clusters: 4,
            sigma: 0.01,
            cluster_fraction: 0.9,
        };
        let sky = clustered_sky(4_000, 8, 99, cfg);
        assert!(is_htm_sorted(&sky));
        // Count objects per level-4 trixel; the top trixels should hold far
        // more than a uniform share.
        let mut counts = std::collections::HashMap::new();
        for o in &sky {
            *counts.entry(o.htm.ancestor_at(4)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let uniform_share = sky.len() / 2048; // 8·4^4 = 2048 trixels
        assert!(
            max > uniform_share * 20,
            "no hotspot: max {max} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn clustered_point_stays_near_center() {
        let mut rng = StdRng::seed_from_u64(3);
        let center = Vec3::from_radec_deg(100.0, 45.0);
        for _ in 0..200 {
            let p = clustered_point(&mut rng, center, 0.01);
            assert!(
                center.angle_to(p) < 0.08,
                "outlier at {}",
                center.angle_to(p)
            );
        }
    }

    #[test]
    fn clustered_point_works_near_poles() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = clustered_point(&mut rng, Vec3::NORTH, 0.01);
        assert!((p.norm() - 1.0).abs() < 1e-9);
        assert!(Vec3::NORTH.angle_to(p) < 0.1);
    }

    #[test]
    fn zero_cluster_fraction_degenerates_to_uniform() {
        let cfg = ClusterConfig {
            clusters: 1,
            sigma: 0.01,
            cluster_fraction: 0.0,
        };
        let sky = clustered_sky(1_000, 8, 5, cfg);
        let north = sky.iter().filter(|o| o.pos.z > 0.0).count() as f64 / 1_000.0;
        assert!((0.4..0.6).contains(&north));
    }
}
