//! Equal-sized bucket partitioning along the HTM curve.
//!
//! "We employ [the space-filling-curve] property to enforce a linear
//! ordering on SkyQuery objects that allows us to partition the data into
//! equal-sized buckets while preserving spatial proximity. […] Equal-sized
//! buckets result in uniform I/O cost for accessing each bucket."
//! — Section 3.1.
//!
//! A [`Partition`] is a total, gap-free tiling of the object-level HTM curve
//! by contiguous bucket ranges: every object-level HTM ID belongs to exactly
//! one bucket, so query pre-processing can map any object's bounding ranges
//! to bucket IDs with a binary search.

use liferaft_htm::{HtmId, HtmRange, HtmRangeSet};
use liferaft_storage::{BucketId, BucketMeta};

use crate::object::{is_htm_sorted, SkyObject};

/// A total partition of the level-`level` HTM curve into contiguous buckets.
#[derive(Debug, Clone)]
pub struct Partition {
    level: u8,
    /// `starts[i]` is the raw HTM ID where bucket `i` begins; bucket `i`
    /// covers `[starts[i], starts[i+1] - 1]`, the last bucket ending at the
    /// curve's end. Invariant: strictly increasing, `starts[0]` = curve start.
    starts: Vec<u64>,
    buckets: Vec<BucketMeta>,
}

impl Partition {
    /// Builds the paper's partition from an HTM-sorted object table: cut the
    /// curve every `per_bucket` objects. Returns the partition and the
    /// objects grouped per bucket (same order as the input).
    ///
    /// `object_bytes` sizes each bucket for the disk model (the paper's
    /// 10 000 × 4 KB ⇒ 40 MB).
    ///
    /// # Panics
    /// Panics if the input is unsorted, empty, or `per_bucket == 0`.
    pub fn build_from_objects(
        objects: &[SkyObject],
        level: u8,
        per_bucket: usize,
        object_bytes: u64,
    ) -> (Partition, Vec<Vec<SkyObject>>) {
        assert!(per_bucket > 0, "per_bucket must be positive");
        assert!(!objects.is_empty(), "cannot partition an empty catalog");
        assert!(is_htm_sorted(objects), "objects must be HTM-sorted");
        assert!(
            objects.iter().all(|o| o.htm.level() == level),
            "all objects must be indexed at the partition level"
        );

        let curve_start = HtmId::first_at_level(level).raw();
        let mut starts = Vec::new();
        let mut groups: Vec<Vec<SkyObject>> = Vec::new();
        for chunk in objects.chunks(per_bucket) {
            // The bucket boundary is the first object's ID, except the very
            // first bucket which extends back to the curve start so the
            // tiling is total.
            let boundary = if starts.is_empty() {
                curve_start
            } else {
                chunk[0].htm.raw()
            };
            // Ties across a chunk boundary (equal HTM IDs) would make the
            // boundary ambiguous; nudge the boundary to keep starts strictly
            // increasing. (With level-14 IDs duplicates are vanishingly rare.)
            let boundary = match starts.last() {
                Some(&prev) if boundary <= prev => prev + 1,
                _ => boundary,
            };
            starts.push(boundary);
            groups.push(chunk.to_vec());
        }
        let partition = Partition::from_starts(level, starts, |i| {
            let count = groups[i].len() as u64;
            (count, count * object_bytes)
        });
        (partition, groups)
    }

    /// Builds a synthetic partition of `n_buckets` equal curve spans, each
    /// declared to hold `objects_per_bucket` objects of `object_bytes` bytes.
    ///
    /// This is the virtual-catalog layout: at paper scale (≈20 000 buckets ×
    /// 10 000 objects) buckets are defined analytically and materialized on
    /// demand.
    pub fn synthetic_uniform(
        level: u8,
        n_buckets: u32,
        objects_per_bucket: u64,
        object_bytes: u64,
    ) -> Partition {
        assert!(n_buckets > 0, "need at least one bucket");
        let first = HtmId::first_at_level(level).raw();
        let total_span = HtmId::count_at_level(level);
        assert!(
            total_span >= n_buckets as u64,
            "more buckets than curve positions"
        );
        let starts: Vec<u64> = (0..n_buckets)
            .map(|i| first + (i as u64 * total_span) / n_buckets as u64)
            .collect();
        Partition::from_starts(level, starts, |_| {
            (objects_per_bucket, objects_per_bucket * object_bytes)
        })
    }

    fn from_starts(
        level: u8,
        starts: Vec<u64>,
        size_of: impl Fn(usize) -> (u64, u64),
    ) -> Partition {
        assert!(!starts.is_empty());
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "bucket starts must be strictly increasing"
        );
        let curve_end = HtmId::last_at_level(level).raw();
        assert!(
            *starts.last().expect("non-empty") <= curve_end,
            "bucket start beyond curve end"
        );
        let buckets = (0..starts.len())
            .map(|i| {
                let lo = starts[i];
                let hi = if i + 1 < starts.len() {
                    starts[i + 1] - 1
                } else {
                    curve_end
                };
                let (object_count, bytes) = size_of(i);
                BucketMeta {
                    id: BucketId(i as u32),
                    htm_range: HtmRange::new(
                        HtmId::from_raw(lo).expect("valid partition boundary"),
                        HtmId::from_raw(hi).expect("valid partition boundary"),
                    ),
                    object_count,
                    bytes,
                }
            })
            .collect();
        Partition {
            level,
            starts,
            buckets,
        }
    }

    /// The object-level of the partition.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// All bucket metadata in curve order.
    pub fn buckets(&self) -> &[BucketMeta] {
        &self.buckets
    }

    /// Metadata for one bucket.
    pub fn meta(&self, id: BucketId) -> &BucketMeta {
        &self.buckets[id.index()]
    }

    /// The bucket owning an object-level HTM ID (total: every ID has one).
    pub fn bucket_of(&self, id: HtmId) -> BucketId {
        assert_eq!(
            id.level(),
            self.level,
            "bucket_of requires object-level IDs"
        );
        let raw = id.raw();
        // partition_point returns the first start > raw; the owner is the
        // bucket before it.
        let idx = self.starts.partition_point(|&s| s <= raw);
        BucketId((idx - 1) as u32)
    }

    /// The inclusive bucket span overlapping an object-level HTM range.
    pub fn buckets_overlapping(&self, range: HtmRange) -> std::ops::RangeInclusive<u32> {
        let lo = self.bucket_of(range.lo()).0;
        let hi = self.bucket_of(range.hi()).0;
        lo..=hi
    }

    /// The sorted, deduplicated bucket IDs overlapping any range of the set.
    pub fn buckets_overlapping_set(&self, set: &HtmRangeSet) -> Vec<BucketId> {
        let mut out: Vec<BucketId> = Vec::new();
        for &r in set.ranges() {
            for b in self.buckets_overlapping(r) {
                if out.last() != Some(&BucketId(b)) {
                    out.push(BucketId(b));
                }
            }
        }
        // Ranges in a set are sorted, so `out` is sorted; dedup handled above
        // except across set ranges mapping to the same bucket.
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_sky;
    use liferaft_htm::Vec3;

    #[test]
    fn build_from_objects_equal_counts() {
        let sky = uniform_sky(1_000, 8, 42);
        let (p, groups) = Partition::build_from_objects(&sky, 8, 100, 4096);
        assert_eq!(p.num_buckets(), 10);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.len(), 100, "bucket {i}");
            assert_eq!(p.buckets()[i].object_count, 100);
            assert_eq!(p.buckets()[i].bytes, 100 * 4096);
        }
    }

    #[test]
    fn build_handles_ragged_tail() {
        let sky = uniform_sky(250, 8, 1);
        let (p, groups) = Partition::build_from_objects(&sky, 8, 100, 1);
        assert_eq!(p.num_buckets(), 3);
        assert_eq!(groups[2].len(), 50);
        assert_eq!(p.buckets()[2].object_count, 50);
    }

    #[test]
    fn partition_tiles_the_whole_curve() {
        let sky = uniform_sky(500, 8, 7);
        let (p, _) = Partition::build_from_objects(&sky, 8, 50, 1);
        // First bucket starts at the curve start; last ends at the curve end.
        assert_eq!(
            p.buckets().first().unwrap().htm_range.lo(),
            HtmId::first_at_level(8)
        );
        assert_eq!(
            p.buckets().last().unwrap().htm_range.hi(),
            HtmId::last_at_level(8)
        );
        // Adjacent buckets are contiguous with no gaps.
        for w in p.buckets().windows(2) {
            assert_eq!(w[0].htm_range.hi().raw() + 1, w[1].htm_range.lo().raw());
        }
    }

    #[test]
    fn every_object_lands_in_its_group_bucket() {
        let sky = uniform_sky(400, 8, 3);
        let (p, groups) = Partition::build_from_objects(&sky, 8, 64, 1);
        for (i, g) in groups.iter().enumerate() {
            for o in g {
                assert_eq!(p.bucket_of(o.htm), BucketId(i as u32));
                assert!(p.buckets()[i].htm_range.contains(o.htm));
            }
        }
    }

    #[test]
    fn bucket_of_boundaries() {
        let p = Partition::synthetic_uniform(4, 8, 10, 1);
        assert_eq!(p.bucket_of(HtmId::first_at_level(4)), BucketId(0));
        assert_eq!(p.bucket_of(HtmId::last_at_level(4)), BucketId(7));
        // The ID just below bucket 1's start belongs to bucket 0.
        let b1_lo = p.buckets()[1].htm_range.lo();
        assert_eq!(p.bucket_of(b1_lo), BucketId(1));
        let before = HtmId::from_raw_unchecked(b1_lo.raw() - 1);
        assert_eq!(p.bucket_of(before), BucketId(0));
    }

    #[test]
    fn synthetic_uniform_has_equal_spans() {
        let p = Partition::synthetic_uniform(6, 32, 100, 4096);
        assert_eq!(p.num_buckets(), 32);
        let spans: Vec<u64> = p.buckets().iter().map(|b| b.htm_range.len()).collect();
        let (mn, mx) = (spans.iter().min().unwrap(), spans.iter().max().unwrap());
        assert!(mx - mn <= 1, "spans should differ by at most 1: {mn}..{mx}");
        assert!(p.buckets().iter().all(|b| b.object_count == 100));
    }

    #[test]
    fn buckets_overlapping_range_and_set() {
        let p = Partition::synthetic_uniform(4, 8, 10, 1);
        let all = HtmRange::full(4);
        assert_eq!(p.buckets_overlapping(all), 0..=7);
        // A range inside bucket 3.
        let b3 = p.buckets()[3].htm_range;
        assert_eq!(p.buckets_overlapping(b3), 3..=3);
        // A set spanning buckets 1..=2 and 5.
        let set = HtmRangeSet::from_ranges(vec![
            HtmRange::new(p.buckets()[1].htm_range.lo(), p.buckets()[2].htm_range.hi()),
            p.buckets()[5].htm_range,
        ]);
        let ids = p.buckets_overlapping_set(&set);
        assert_eq!(ids, vec![BucketId(1), BucketId(2), BucketId(5)]);
    }

    #[test]
    fn paper_scale_partition_is_cheap() {
        // 20 000 buckets of 10 000 objects — metadata only, no objects.
        let p = Partition::synthetic_uniform(14, 20_000, 10_000, 4096);
        assert_eq!(p.num_buckets(), 20_000);
        let b = p.meta(BucketId(19_999));
        assert_eq!(b.bytes, 40_960_000);
        assert_eq!(b.htm_range.hi(), HtmId::last_at_level(14));
    }

    #[test]
    #[should_panic(expected = "HTM-sorted")]
    fn build_rejects_unsorted_input() {
        let a = SkyObject::at(Vec3::from_radec_deg(300.0, 80.0), 8, 1.0);
        let b = SkyObject::at(Vec3::from_radec_deg(10.0, -80.0), 8, 1.0);
        let (hi, lo) = if a.htm < b.htm { (b, a) } else { (a, b) };
        Partition::build_from_objects(&[hi, lo], 8, 1, 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn build_rejects_empty_input() {
        Partition::build_from_objects(&[], 8, 10, 1);
    }
}
