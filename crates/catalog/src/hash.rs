//! Counter-based deterministic hashing for on-demand object generation.
//!
//! The virtual catalog must materialize any bucket, in any order, any number
//! of times, and always produce identical rows — without storing them. A
//! counter-mode hash (SplitMix64 finalizer) gives us a pure function from
//! `(seed, bucket, slot, stream)` to pseudo-random bits with good avalanche
//! behaviour and no sequential state.

/// SplitMix64 finalizer: a fast, well-mixed 64→64-bit hash.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a `(seed, a, b, stream)` tuple into 64 bits.
#[inline]
pub fn hash4(seed: u64, a: u64, b: u64, stream: u64) -> u64 {
    // Chain the finalizer over the inputs; each step fully re-mixes.
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b);
    splitmix64(h ^ stream)
}

/// Maps a hash to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    // Use the top 53 bits for a dyadic uniform in [0,1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values_are_stable() {
        // Pin the outputs so accidental algorithm changes (which would break
        // reproducibility of every virtual catalog) fail loudly.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0xDEAD_BEEF), splitmix64(0xDEAD_BEEF));
    }

    #[test]
    fn hash4_differs_across_all_coordinates() {
        let base = hash4(1, 2, 3, 4);
        assert_ne!(base, hash4(2, 2, 3, 4));
        assert_ne!(base, hash4(1, 3, 3, 4));
        assert_ne!(base, hash4(1, 2, 4, 4));
        assert_ne!(base, hash4(1, 2, 3, 5));
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for i in 0..10_000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01, "min {lo} not near 0");
        assert!(hi > 0.99, "max {hi} not near 1");
    }

    #[test]
    fn avalanche_smoke_test() {
        // Flipping one input bit should flip ~half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
