//! The [`Catalog`] trait and its two implementations.

use std::borrow::Cow;

use liferaft_htm::{HtmId, Vec3};
use liferaft_storage::{BucketId, BucketMeta};

use crate::hash::{hash4, unit_f64};
use crate::object::SkyObject;
use crate::partition::Partition;

/// Read access to a partitioned object catalog.
///
/// The scheduler and pre-processor need only the [`Partition`] (bucket
/// extents); the join evaluator additionally pulls bucket payloads through
/// [`Catalog::bucket_objects`] when joins are executed for real.
pub trait Catalog {
    /// The bucket layout.
    fn partition(&self) -> &Partition;

    /// The objects of one bucket, HTM-sorted.
    ///
    /// Materialized catalogs return a borrow; virtual catalogs generate the
    /// rows on demand (deterministically per seed).
    fn bucket_objects(&self, id: BucketId) -> Cow<'_, [SkyObject]>;

    /// Convenience: metadata for one bucket.
    fn meta(&self, id: BucketId) -> &BucketMeta {
        self.partition().meta(id)
    }

    /// Total declared object count.
    fn total_objects(&self) -> u64 {
        self.partition()
            .buckets()
            .iter()
            .map(|b| b.object_count)
            .sum()
    }
}

/// A fully in-memory catalog: real rows grouped per bucket.
///
/// Built from a generated sky via the paper's sort-and-chunk partitioning;
/// the implementation of choice wherever joins are actually executed.
#[derive(Debug, Clone)]
pub struct MaterializedCatalog {
    partition: Partition,
    groups: Vec<Vec<SkyObject>>,
}

impl MaterializedCatalog {
    /// Partitions an HTM-sorted object table into `per_bucket`-object buckets.
    pub fn build(objects: &[SkyObject], level: u8, per_bucket: usize, object_bytes: u64) -> Self {
        let (partition, groups) =
            Partition::build_from_objects(objects, level, per_bucket, object_bytes);
        MaterializedCatalog { partition, groups }
    }
}

impl Catalog for MaterializedCatalog {
    fn partition(&self) -> &Partition {
        &self.partition
    }

    fn bucket_objects(&self, id: BucketId) -> Cow<'_, [SkyObject]> {
        Cow::Borrowed(&self.groups[id.index()])
    }
}

/// A paper-scale catalog defined analytically and materialized on demand.
///
/// Bucket `i` owns an equal span of the object-level curve and holds exactly
/// `objects_per_bucket` rows, placed by stratified sampling of the span:
/// slot `k` gets an HTM ID inside the `k`-th sub-span, jittered by a
/// counter-based hash of `(seed, bucket, slot)`. Object positions are the
/// trixel centers of their IDs, so `locate(pos) == htm` holds by
/// construction and rows come out HTM-sorted with no sorting pass.
#[derive(Debug, Clone)]
pub struct VirtualCatalog {
    partition: Partition,
    objects_per_bucket: u64,
    seed: u64,
}

impl VirtualCatalog {
    /// Creates a virtual catalog of `n_buckets × objects_per_bucket` rows.
    ///
    /// # Panics
    /// Panics if any bucket span is smaller than `objects_per_bucket` (there
    /// must be at least one curve position per row so IDs can be strictly
    /// increasing).
    pub fn new(
        level: u8,
        n_buckets: u32,
        objects_per_bucket: u64,
        object_bytes: u64,
        seed: u64,
    ) -> Self {
        let partition =
            Partition::synthetic_uniform(level, n_buckets, objects_per_bucket, object_bytes);
        let min_span = partition
            .buckets()
            .iter()
            .map(|b| b.htm_range.len())
            .min()
            .expect("at least one bucket");
        assert!(
            min_span >= objects_per_bucket,
            "bucket span {min_span} cannot host {objects_per_bucket} distinct IDs"
        );
        VirtualCatalog {
            partition,
            objects_per_bucket,
            seed,
        }
    }

    /// The paper's experimental scale: level 14, ~20 000 buckets of 10 000
    /// objects of 4 KB (40 MB buckets).
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(crate::OBJECT_LEVEL, 20_000, 10_000, 4096, seed)
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the `slot`-th object of `bucket` (pure function).
    pub fn object_at(&self, bucket: BucketId, slot: u64) -> SkyObject {
        debug_assert!(slot < self.objects_per_bucket);
        let meta = self.partition.meta(bucket);
        let span = meta.htm_range.len();
        let lo = meta.htm_range.lo().raw();
        let n = self.objects_per_bucket;
        // Stratified: slot k owns sub-span [k·span/n, (k+1)·span/n).
        let sub_lo = (slot as u128 * span as u128 / n as u128) as u64;
        let sub_hi = ((slot + 1) as u128 * span as u128 / n as u128) as u64;
        let gap = (sub_hi - sub_lo).max(1);
        let h = hash4(self.seed, bucket.0 as u64, slot, 0);
        let raw = lo + sub_lo + h % gap;
        let htm = HtmId::from_raw(raw).expect("IDs inside a bucket range are valid");
        let pos = trixel_center(htm);
        let mag = 14.0 + 10.0 * unit_f64(hash4(self.seed, bucket.0 as u64, slot, 1)) as f32;
        SkyObject { htm, pos, mag }
    }
}

/// The center position of a trixel (cached root geometry, then a path walk).
fn trixel_center(id: HtmId) -> Vec3 {
    liferaft_htm::trixel_of(id).center()
}

impl Catalog for VirtualCatalog {
    fn partition(&self) -> &Partition {
        &self.partition
    }

    fn bucket_objects(&self, id: BucketId) -> Cow<'_, [SkyObject]> {
        let rows: Vec<SkyObject> = (0..self.objects_per_bucket)
            .map(|slot| self.object_at(id, slot))
            .collect();
        debug_assert!(crate::object::is_htm_sorted(&rows));
        Cow::Owned(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_sky;
    use crate::object::is_htm_sorted;

    #[test]
    fn materialized_catalog_round_trip() {
        let sky = uniform_sky(300, 8, 11);
        let cat = MaterializedCatalog::build(&sky, 8, 50, 4096);
        assert_eq!(cat.partition().num_buckets(), 6);
        assert_eq!(cat.total_objects(), 300);
        let b0 = cat.bucket_objects(BucketId(0));
        assert_eq!(b0.len(), 50);
        assert!(matches!(b0, Cow::Borrowed(_)));
        // Objects in bucket 0 are exactly the 50 smallest HTM IDs.
        assert_eq!(&b0[..], &sky[..50]);
    }

    #[test]
    fn virtual_catalog_rows_are_sorted_unique_and_in_range() {
        let cat = VirtualCatalog::new(10, 16, 200, 4096, 99);
        for b in [0u32, 7, 15] {
            let id = BucketId(b);
            let rows = cat.bucket_objects(id);
            assert_eq!(rows.len(), 200);
            assert!(is_htm_sorted(&rows));
            let meta = cat.meta(id);
            for w in rows.windows(2) {
                assert!(w[0].htm < w[1].htm, "duplicate or unsorted IDs");
            }
            for o in rows.iter() {
                assert!(meta.htm_range.contains(o.htm));
                assert!((o.pos.norm() - 1.0).abs() < 1e-9);
                assert!((14.0..24.0).contains(&o.mag));
            }
        }
    }

    #[test]
    fn virtual_catalog_is_deterministic() {
        let a = VirtualCatalog::new(10, 8, 100, 4096, 5);
        let b = VirtualCatalog::new(10, 8, 100, 4096, 5);
        let c = VirtualCatalog::new(10, 8, 100, 4096, 6);
        assert_eq!(
            a.bucket_objects(BucketId(3)).as_ref(),
            b.bucket_objects(BucketId(3)).as_ref()
        );
        assert_ne!(
            a.bucket_objects(BucketId(3)).as_ref(),
            c.bucket_objects(BucketId(3)).as_ref()
        );
    }

    #[test]
    fn virtual_positions_agree_with_ids() {
        let cat = VirtualCatalog::new(8, 8, 50, 4096, 1);
        for o in cat.bucket_objects(BucketId(2)).iter() {
            assert_eq!(liferaft_htm::locate(o.pos, 8), o.htm);
        }
    }

    #[test]
    fn paper_scale_metadata_without_materialization() {
        let cat = VirtualCatalog::paper_scale(42);
        assert_eq!(cat.partition().num_buckets(), 20_000);
        assert_eq!(cat.total_objects(), 200_000_000);
        assert_eq!(cat.meta(BucketId(0)).bytes, 40_960_000);
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn virtual_rejects_overfull_buckets() {
        // Level 2 has 128 positions; 8 buckets of 32 objects need 256.
        VirtualCatalog::new(2, 8, 32, 1, 0);
    }

    #[test]
    fn object_at_is_pure() {
        let cat = VirtualCatalog::new(10, 8, 100, 4096, 5);
        let a = cat.object_at(BucketId(1), 42);
        let b = cat.object_at(BucketId(1), 42);
        assert_eq!(a, b);
    }
}
