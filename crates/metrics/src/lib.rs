//! Streaming statistics and reporting utilities for LifeRaft experiments.
//!
//! The paper's evaluation reports query throughput, mean response time,
//! coefficient of variation (Figure 7b), normalized trade-off curves
//! (Figure 4), and cumulative distributions (Figure 6). This crate provides
//! the numerically careful building blocks for all of them:
//!
//! - [`StreamingStats`] — Welford-style single-pass mean/variance,
//! - [`Summary`] — percentile summaries of a sample,
//! - [`normalize`] — min–max and max normalization used by the aged metric
//!   and by Figure 4's normalized axes,
//! - [`table::Table`] — aligned ASCII tables for the figure harnesses,
//! - [`series::Series`] — labelled (x, y) sequences emitted by sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod normalize;
pub mod series;
pub mod stats;
pub mod table;

pub use normalize::{max_normalize, min_max_normalize};
pub use series::Series;
pub use stats::{StreamingStats, Summary};
pub use table::Table;
