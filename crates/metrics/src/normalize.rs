//! Normalization helpers.
//!
//! Used in two places that must agree on conventions:
//!
//! 1. The **aged workload throughput metric** combines a rate (`Ut`,
//!    objects/ms) with an age (`A`, ms). The paper's Eq. 2 adds them raw; we
//!    min–max normalize both over the candidate set at each scheduling
//!    decision so that `α` interpolates meaningfully (see DESIGN.md §2).
//! 2. **Figure 4** plots throughput and response time normalized to their
//!    maxima over all α values.

/// Min–max normalizes `values` into `[0, 1]` in place.
///
/// A constant slice maps to all-zeros (there is nothing to discriminate).
pub fn min_max_normalize(values: &mut [f64]) {
    let Some((lo, hi)) = bounds(values) else {
        return;
    };
    let span = hi - lo;
    if span <= 0.0 {
        values.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    for v in values.iter_mut() {
        *v = (*v - lo) / span;
    }
}

/// Divides `values` by their maximum in place (Figure 4's convention).
///
/// Non-positive maxima leave the slice untouched.
pub fn max_normalize(values: &mut [f64]) {
    let Some((_, hi)) = bounds(values) else {
        return;
    };
    if hi <= 0.0 {
        return;
    }
    for v in values.iter_mut() {
        *v /= hi;
    }
}

/// Returns `(min, max)` of a slice, or `None` if empty.
///
/// # Panics
/// Panics on NaN input: a NaN metric is an upstream accounting bug.
pub fn bounds(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        assert!(!v.is_nan(), "normalize input contains NaN");
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_basic() {
        let mut v = vec![2.0, 4.0, 6.0];
        min_max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn min_max_constant_slice() {
        let mut v = vec![3.0, 3.0, 3.0];
        min_max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn min_max_empty_is_noop() {
        let mut v: Vec<f64> = vec![];
        min_max_normalize(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn min_max_handles_negatives() {
        let mut v = vec![-2.0, 0.0, 2.0];
        min_max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn max_normalize_basic() {
        let mut v = vec![1.0, 2.0, 4.0];
        max_normalize(&mut v);
        assert_eq!(v, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn max_normalize_zero_max_is_noop() {
        let mut v = vec![0.0, 0.0];
        max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn bounds_reports_extremes() {
        assert_eq!(bounds(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
        assert_eq!(bounds(&[]), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn bounds_rejects_nan() {
        bounds(&[1.0, f64::NAN]);
    }
}
