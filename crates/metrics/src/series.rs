//! Labelled (x, y) series produced by parameter sweeps.

use std::fmt;

/// A labelled sequence of `(x, y)` points, e.g. "Bias 0.25" in Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The y values only.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }

    /// The y value at a given x, if present (exact bit-match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| px == x)
            .map(|&(_, y)| y)
    }

    /// Linear interpolation of y at `x` over points sorted by x.
    ///
    /// Clamps outside the domain. Returns `None` if the series is empty.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x values"));
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x0 <= x && x <= x1 {
                if x1 == x0 {
                    return Some(y0);
                }
                let t = (x - x0) / (x1 - x0);
                return Some(y0 + t * (y1 - y0));
            }
        }
        unreachable!("interpolation domain covered by clamps and windows")
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.label)?;
        for &(x, y) in &self.points {
            writeln!(f, "{x:.6}\t{y:.6}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = Series::new("Bias 0.25");
        s.push(0.1, 0.15);
        s.push(0.5, 0.32);
        assert_eq!(s.label(), "Bias 0.25");
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.y_at(0.5), Some(0.32));
        assert_eq!(s.y_at(0.3), None);
        assert_eq!(s.ys(), vec![0.15, 0.32]);
    }

    #[test]
    fn interpolation_midpoint_and_clamps() {
        let mut s = Series::new("t");
        s.push(0.0, 0.0);
        s.push(1.0, 10.0);
        assert_eq!(s.interpolate(0.5), Some(5.0));
        assert_eq!(s.interpolate(-1.0), Some(0.0));
        assert_eq!(s.interpolate(2.0), Some(10.0));
        assert_eq!(Series::new("e").interpolate(0.5), None);
    }

    #[test]
    fn interpolation_unsorted_input() {
        let mut s = Series::new("t");
        s.push(1.0, 10.0);
        s.push(0.0, 0.0);
        s.push(0.5, 2.0);
        assert_eq!(s.interpolate(0.25), Some(1.0));
        assert_eq!(s.interpolate(0.75), Some(6.0));
    }

    #[test]
    fn display_is_gnuplot_friendly() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0);
        let out = s.to_string();
        assert!(out.starts_with("# x\n"));
        assert!(out.contains("1.000000\t2.000000"));
    }
}
