//! Minimal aligned ASCII tables for figure harness output.

use std::fmt::Write as _;

/// A right-padded, column-aligned ASCII table.
///
/// The figure harnesses print the same rows/series the paper reports; this
/// keeps them readable without pulling in a formatting dependency.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<width$}", width = widths[i]);
            }
            // Trim trailing padding on the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Formats a float with a fixed number of decimals — tiny convenience used
/// all over the harnesses.
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["alg", "throughput", "rt"]);
        t.row(["NoShare", "0.105", "1.00"]);
        t.row(["LifeRaft(0)", "0.231", "0.47"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("alg"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "throughput" starts at the same offset in all rows.
        let off = lines[0].find("throughput").unwrap();
        assert_eq!(&lines[2][off..off + 5], "0.105");
        assert_eq!(&lines[3][off..off + 5], "0.231");
    }

    #[test]
    fn num_rows_counts() {
        let mut t = Table::new(["a"]);
        assert_eq!(t.num_rows(), 0);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn fmt_f_formats() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(0.5, 3), "0.500");
    }
}
