//! Single-pass and sample statistics.

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long simulation runs where response times span
/// five orders of magnitude (milliseconds for cached interactive queries,
/// hundreds of seconds for full-sky scans).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), the dispersion measure of Figure 7b.
    ///
    /// Returns 0 for an empty or zero-mean sample.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = StreamingStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// A percentile summary of a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: StreamingStats,
}

impl Summary {
    /// Builds a summary from a sample (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if any observation is NaN — a NaN response time is always an
    /// accounting bug upstream and must not be silently absorbed.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "summary input contains NaN"
        );
        let stats = samples.iter().copied().collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after check"));
        Summary {
            sorted: samples,
            stats,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Coefficient of variation (σ/μ).
    pub fn coefficient_of_variation(&self) -> f64 {
        self.stats.coefficient_of_variation()
    }

    /// Linear-interpolated percentile, `p ∈ [0, 100]`. Returns 0 if empty.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.sorted.is_empty() {
            return 0.0;
        }
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Merges another summary into this one, as if both samples had been
    /// collected in a single pass: the sorted samples interleave (two-pointer
    /// merge, no re-sort) and the moment accumulators combine via
    /// [`StreamingStats::merge`]. This is the cross-shard aggregation path —
    /// each shard summarizes its own completions, and the runtime folds the
    /// per-shard summaries without ever materializing the global sample
    /// twice.
    pub fn merge(&mut self, other: &Summary) {
        if other.sorted.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let (a, b) = (&self.sorted, &other.sorted);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            // `<=` keeps self's observations first on ties (stable merge).
            if a[i] <= b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.sorted = merged;
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_mean_and_variance() {
        let s: StreamingStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.coefficient_of_variation() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn single_observation() {
        let s: StreamingStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let seq: StreamingStats = all.iter().copied().collect();
        let mut a: StreamingStats = all[..37].iter().copied().collect();
        let b: StreamingStats = all[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: StreamingStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s, before);
        let mut e = StreamingStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(s.count(), 100);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.median() - 50.5).abs() < 1e-12);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.percentile(100.0) - 100.0).abs() < 1e-12);
        assert!((s.percentile(90.0) - 90.1).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::from_samples(vec![]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(vec![7.0]);
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.percentile(37.0), 7.0);
        assert_eq!(s.percentile(100.0), 7.0);
    }

    #[test]
    fn summary_merge_matches_single_pass() {
        let all: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let single = Summary::from_samples(all.clone());
        let mut a = Summary::from_samples(all[..83].to_vec());
        let b = Summary::from_samples(all[83..].to_vec());
        a.merge(&b);
        assert_eq!(a.count(), single.count());
        assert_eq!(a.sorted(), single.sorted(), "merge must equal a re-sort");
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), single.percentile(p), "p{p}");
        }
        assert!((a.mean() - single.mean()).abs() < 1e-9);
        assert!((a.std_dev() - single.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut s = Summary::from_samples(vec![3.0, 1.0, 2.0]);
        let before = s.clone();
        s.merge(&Summary::from_samples(vec![]));
        assert_eq!(s, before);
        let mut e = Summary::from_samples(vec![]);
        e.merge(&before);
        assert_eq!(e.sorted(), before.sorted());
        assert_eq!(e.mean(), before.mean());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        Summary::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_range_checked() {
        Summary::from_samples(vec![1.0]).percentile(101.0);
    }
}
