//! Property tests for the statistics substrate.

use liferaft_metrics::{max_normalize, min_max_normalize, StreamingStats, Summary};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6..1e6f64, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Welford agrees with the naive two-pass formulas.
    #[test]
    fn welford_matches_two_pass(samples in finite_samples()) {
        let s: StreamingStats = samples.iter().copied().collect();
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Merging any split of a sample equals processing it whole.
    #[test]
    fn merge_is_split_invariant(samples in finite_samples(), split in 0.0..1.0f64) {
        let k = (samples.len() as f64 * split) as usize;
        let whole: StreamingStats = samples.iter().copied().collect();
        let mut left: StreamingStats = samples[..k].iter().copied().collect();
        let right: StreamingStats = samples[k..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                < 1e-4 * (1.0 + whole.variance().abs())
        );
    }

    /// Percentiles are monotone, bounded by min/max, and the 0th/100th hit
    /// the extremes exactly.
    #[test]
    fn percentiles_are_monotone_and_bounded(samples in finite_samples()) {
        let s = Summary::from_samples(samples.clone());
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= last);
            prop_assert!(v >= s.min() - 1e-9);
            prop_assert!(v <= s.max() + 1e-9);
            last = v;
        }
        prop_assert_eq!(s.percentile(0.0), s.min());
        prop_assert_eq!(s.percentile(100.0), s.max());
    }

    /// Normalization lands in [0,1] and preserves order.
    #[test]
    fn min_max_preserves_order(samples in finite_samples()) {
        let mut v = samples.clone();
        min_max_normalize(&mut v);
        for &x in &v {
            prop_assert!((0.0..=1.0).contains(&x));
        }
        for (a, b) in samples.iter().zip(samples.iter().skip(1)) {
            let (na, nb) = (v[samples.iter().position(|x| x == a).unwrap()],
                            v[samples.iter().position(|x| x == b).unwrap()]);
            if a < b {
                prop_assert!(na <= nb);
            }
        }
    }

    /// Max-normalization of positive data puts the maximum at exactly 1.
    #[test]
    fn max_normalize_tops_at_one(samples in proptest::collection::vec(0.001..1e6f64, 1..50)) {
        let mut v = samples;
        max_normalize(&mut v);
        let top = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((top - 1.0).abs() < 1e-12);
    }
}
