//! Property tests: all four join engines compute the same matches.

use liferaft_catalog::generate::{clustered_sky, uniform_sky, ClusterConfig};
use liferaft_catalog::SkyObject;
use liferaft_htm::Vec3;
use liferaft_join::brute::brute_force_join;
use liferaft_join::indexed::indexed_join;
use liferaft_join::sweep::sweep_join;
use liferaft_join::zones::ZoneMap;
use liferaft_query::{MatchObject, QueryId, QueueEntry};
use liferaft_storage::SimTime;
use proptest::prelude::*;

const LEVEL: u8 = 10;

fn entry_at(pos: Vec3, radius: f64, query: u64, oi: u32) -> QueueEntry {
    let mo = MatchObject::new(pos, radius, LEVEL);
    QueueEntry {
        query: QueryId(query),
        object_index: oi,
        pos,
        radius,
        bbox: mo.bounding_range(),
        enqueued_at: SimTime::ZERO,
    }
}

/// Builds workload entries derived from (but offset against) the sky.
fn derive_entries(sky: &[SkyObject], offsets: &[(f64, f64, f64)]) -> Vec<QueueEntry> {
    offsets
        .iter()
        .enumerate()
        .map(|(i, &(pick, dra, radius))| {
            let src = &sky[(pick * (sky.len() - 1) as f64) as usize];
            let (ra, dec) = src.pos.to_radec_deg();
            let pos = Vec3::from_radec_deg(ra + dra, dec - dra / 2.0);
            entry_at(pos, radius, i as u64 % 5, i as u32)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sweep ≡ indexed ≡ zones ≡ brute force on uniform skies.
    #[test]
    fn engines_agree_on_uniform_sky(
        seed in 0u64..1000,
        n in 50usize..300,
        offsets in proptest::collection::vec(
            (0.0..1.0f64, -0.05..0.05f64, 1e-4..0.05f64),
            1..25
        ),
    ) {
        let sky = uniform_sky(n, LEVEL, seed);
        let entries = derive_entries(&sky, &offsets);
        let brute = brute_force_join(&sky, &entries).sorted_pairs();
        prop_assert_eq!(sweep_join(&sky, &entries).sorted_pairs(), brute.clone());
        prop_assert_eq!(indexed_join(&sky, &entries).sorted_pairs(), brute.clone());
        let zm = ZoneMap::build(&sky, 0.02);
        prop_assert_eq!(zm.crossmatch(&sky, &entries).sorted_pairs(), brute);
    }

    /// Same equivalence on clustered (dense-hotspot) skies, where candidate
    /// windows are crowded.
    #[test]
    fn engines_agree_on_clustered_sky(
        seed in 0u64..500,
        offsets in proptest::collection::vec(
            (0.0..1.0f64, -0.02..0.02f64, 1e-4..0.03f64),
            1..15
        ),
    ) {
        let cfg = ClusterConfig { clusters: 3, sigma: 0.01, cluster_fraction: 0.8 };
        let sky = clustered_sky(200, LEVEL, seed, cfg);
        let entries = derive_entries(&sky, &offsets);
        let brute = brute_force_join(&sky, &entries).sorted_pairs();
        prop_assert_eq!(sweep_join(&sky, &entries).sorted_pairs(), brute.clone());
        prop_assert_eq!(indexed_join(&sky, &entries).sorted_pairs(), brute.clone());
        let zm = ZoneMap::build(&sky, 0.015);
        prop_assert_eq!(zm.crossmatch(&sky, &entries).sorted_pairs(), brute);
    }

    /// Anchored entries (exact positions of catalog rows) always match their
    /// anchors, in every engine.
    #[test]
    fn anchored_entries_always_match(
        seed in 0u64..500,
        picks in proptest::collection::vec(0.0..1.0f64, 1..10),
    ) {
        let sky = uniform_sky(150, LEVEL, seed);
        let entries: Vec<QueueEntry> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let k = (p * (sky.len() - 1) as f64) as usize;
                entry_at(sky[k].pos, 1e-5, 0, i as u32)
            })
            .collect();
        for out in [
            sweep_join(&sky, &entries),
            indexed_join(&sky, &entries),
            ZoneMap::build(&sky, 0.02).crossmatch(&sky, &entries),
        ] {
            prop_assert!(out.len() >= entries.len());
        }
    }

    /// The zone height never changes the result, only the filter efficiency.
    #[test]
    fn zone_height_invariance(
        seed in 0u64..200,
        h1 in 0.005..0.1f64,
        h2 in 0.005..0.1f64,
    ) {
        let sky = uniform_sky(120, LEVEL, seed);
        let entries = derive_entries(&sky, &[(0.3, 0.01, 0.02), (0.7, -0.01, 0.03)]);
        let a = ZoneMap::build(&sky, h1).crossmatch(&sky, &entries).sorted_pairs();
        let b = ZoneMap::build(&sky, h2).crossmatch(&sky, &entries).sorted_pairs();
        prop_assert_eq!(a, b);
    }
}
