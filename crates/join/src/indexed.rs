//! The indexed join: per-entry probes of the bucket's clustered HTM index.
//!
//! "If indices are available on the join attributes, cross-matching a small
//! workload queue using an indexed join is more efficient because the cost
//! of random I/O accesses is low relative to that of scanning an entire
//! bucket" — Section 3.4.
//!
//! The bucket slice, being HTM-sorted, *is* the leaf level of a clustered
//! index; a probe is a binary search to the entry's bounding-box start
//! followed by a short leaf scan. The output is identical to the sweep
//! join's — only the access pattern (and therefore the cost profile the
//! simulator charges) differs: one random I/O per probe instead of one
//! sequential bucket read.

use liferaft_catalog::SkyObject;
use liferaft_htm::vector::ChordBound;
use liferaft_query::QueueEntry;

use crate::types::{JoinOutput, MatchPair};

/// Joins by probing the sorted bucket once per queue entry.
///
/// `probes` in the output counts one probe per entry — the quantity the
/// cost model charges a random I/O for.
pub fn indexed_join(bucket: &[SkyObject], entries: &[QueueEntry]) -> JoinOutput {
    debug_assert!(
        bucket.windows(2).all(|w| w[0].htm <= w[1].htm),
        "bucket slice must be HTM-sorted"
    );
    let mut out = JoinOutput::default();
    for e in entries {
        out.probes += 1;
        let lo = e.bbox.lo();
        let hi = e.bbox.hi();
        // Binary search to the first object ≥ lo (the index descent).
        let start = bucket.partition_point(|o| o.htm < lo);
        let bound = ChordBound::new(e.radius);
        let mut j = start;
        while j < bucket.len() && bucket[j].htm <= hi {
            out.candidates_tested += 1;
            if bound.matches(e.pos, bucket[j].pos) {
                out.pairs.push(MatchPair {
                    query: e.query,
                    object_index: e.object_index,
                    catalog_index: j as u32,
                });
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use crate::sweep::sweep_join;
    use liferaft_catalog::generate::uniform_sky;
    use liferaft_htm::Vec3;
    use liferaft_query::{MatchObject, QueryId};
    use liferaft_storage::SimTime;

    const LEVEL: u8 = 10;

    fn entry_at(pos: Vec3, radius: f64, query: u64, oi: u32) -> QueueEntry {
        let mo = MatchObject::new(pos, radius, LEVEL);
        QueueEntry {
            query: QueryId(query),
            object_index: oi,
            pos,
            radius,
            bbox: mo.bounding_range(),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn identical_matches_to_sweep_and_brute() {
        let sky = uniform_sky(250, LEVEL, 6);
        let entries: Vec<QueueEntry> = sky
            .iter()
            .step_by(11)
            .enumerate()
            .map(|(i, o)| {
                let (ra, dec) = o.pos.to_radec_deg();
                entry_at(
                    Vec3::from_radec_deg(ra + 0.002, dec),
                    0.01,
                    i as u64,
                    i as u32,
                )
            })
            .collect();
        let idx = indexed_join(&sky, &entries);
        let swp = sweep_join(&sky, &entries);
        let brt = brute_force_join(&sky, &entries);
        assert_eq!(idx.sorted_pairs(), brt.sorted_pairs());
        assert_eq!(idx.sorted_pairs(), swp.sorted_pairs());
    }

    #[test]
    fn one_probe_per_entry() {
        let sky = uniform_sky(100, LEVEL, 7);
        let entries: Vec<QueueEntry> = (0..5)
            .map(|i| entry_at(sky[i * 10].pos, 1e-4, 1, i as u32))
            .collect();
        let out = indexed_join(&sky, &entries);
        assert_eq!(out.probes, 5);
    }

    #[test]
    fn empty_entries_probe_nothing() {
        let sky = uniform_sky(50, LEVEL, 8);
        let out = indexed_join(&sky, &[]);
        assert_eq!(out.probes, 0);
        assert!(out.is_empty());
    }
}
