//! The hybrid join strategy: scan or index, decided per batch.
//!
//! "We employ a hybrid strategy that determines the join plan, either an
//! indexed join or a non-index sequential scan, for each bucket depending on
//! the workload queue size. A pre-determined threshold is used to determine
//! the appropriate join strategy. […] The break even point occurs when the
//! size of the workload queue is roughly 3% of the size of the bucket."
//! — Section 3.4, Figure 2.

use liferaft_catalog::SkyObject;
use liferaft_query::QueueEntry;
use liferaft_storage::CostModel;

use crate::indexed::indexed_join;
use crate::sweep::sweep_join;
use crate::types::JoinOutput;

/// Which plan a batch was (or would be) executed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinStrategy {
    /// Full-bucket sequential scan + merge sweep.
    SequentialScan,
    /// Per-entry probes of the spatial index.
    Indexed,
}

impl std::fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinStrategy::SequentialScan => f.write_str("scan"),
            JoinStrategy::Indexed => f.write_str("indexed"),
        }
    }
}

/// Configuration of the hybrid decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Queue-to-bucket size ratio below which the indexed join is used.
    /// The paper's empirical break-even: 0.03.
    pub threshold_ratio: f64,
    /// If false, always scan (disables the hybrid path; the configuration
    /// of the α-sweep experiments before Section 3.4 is applied).
    pub enabled: bool,
}

impl HybridConfig {
    /// The paper's configuration: hybrid enabled at the 3% break-even.
    pub fn paper() -> Self {
        HybridConfig {
            threshold_ratio: 0.03,
            enabled: true,
        }
    }

    /// Scan-only (hybrid disabled).
    pub fn scan_only() -> Self {
        HybridConfig {
            threshold_ratio: 0.0,
            enabled: false,
        }
    }

    /// Derives the threshold from a cost model and bucket size instead of
    /// the empirical constant: the ratio where
    /// `overhead + W·probe = Tb` (Figure 2's crossing).
    pub fn from_cost(cost: &CostModel, objects_per_bucket: u64) -> Self {
        assert!(objects_per_bucket > 0, "bucket must hold objects");
        let w = cost.break_even_queue_len();
        HybridConfig {
            threshold_ratio: w as f64 / objects_per_bucket as f64,
            enabled: true,
        }
    }

    /// Picks the strategy for a batch of `queue_len` entries against a
    /// bucket of `bucket_objects` rows.
    ///
    /// A cached bucket is always scanned: φ = 0 removes the scan's I/O term
    /// entirely, and an in-memory merge beats per-entry probing for any
    /// queue length.
    pub fn choose(&self, queue_len: u64, bucket_objects: u64, cached: bool) -> JoinStrategy {
        if !self.enabled || cached || bucket_objects == 0 {
            return JoinStrategy::SequentialScan;
        }
        let ratio = queue_len as f64 / bucket_objects as f64;
        if ratio < self.threshold_ratio {
            JoinStrategy::Indexed
        } else {
            JoinStrategy::SequentialScan
        }
    }
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Executes a batch with the given strategy (result is strategy-independent;
/// only the access pattern differs).
pub fn execute(strategy: JoinStrategy, bucket: &[SkyObject], entries: &[QueueEntry]) -> JoinOutput {
    match strategy {
        JoinStrategy::SequentialScan => sweep_join(bucket, entries),
        JoinStrategy::Indexed => indexed_join(bucket, entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_is_three_percent() {
        let h = HybridConfig::paper();
        // 10 000-object bucket: 299 → indexed, 300 → scan.
        assert_eq!(h.choose(299, 10_000, false), JoinStrategy::Indexed);
        assert_eq!(h.choose(300, 10_000, false), JoinStrategy::SequentialScan);
    }

    #[test]
    fn cached_buckets_always_scan() {
        let h = HybridConfig::paper();
        assert_eq!(h.choose(1, 10_000, true), JoinStrategy::SequentialScan);
    }

    #[test]
    fn disabled_hybrid_always_scans() {
        let h = HybridConfig::scan_only();
        assert_eq!(h.choose(1, 10_000, false), JoinStrategy::SequentialScan);
    }

    #[test]
    fn from_cost_matches_break_even() {
        let cost = CostModel::paper();
        let h = HybridConfig::from_cost(&cost, 10_000);
        let w = cost.break_even_queue_len();
        assert_eq!(
            h.choose(w.saturating_sub(1), 10_000, false),
            JoinStrategy::Indexed
        );
        assert_eq!(h.choose(w + 1, 10_000, false), JoinStrategy::SequentialScan);
    }

    #[test]
    fn empty_bucket_scans_trivially() {
        let h = HybridConfig::paper();
        assert_eq!(h.choose(5, 0, false), JoinStrategy::SequentialScan);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(JoinStrategy::SequentialScan.to_string(), "scan");
        assert_eq!(JoinStrategy::Indexed.to_string(), "indexed");
    }
}
