//! The Zones algorithm cross-match (Gray, Nieto-Santisteban & Szalay).
//!
//! The paper's scan-based bucket design follows Gray et al.'s observation
//! that "for queries covering a large spatial region, the I/O cost of
//! repeated index access is much higher than a large sequential scan after
//! the application of a coarse filter" (Section 3.1). The Zones algorithm is
//! that coarse filter realized with declination bands instead of HTM
//! trixels: rows are assigned to horizontal zones of height `h`, sorted by
//! right ascension within each zone, and a match probe inspects only the
//! zones within the error radius and the RA window inside each.
//!
//! It serves here as an *independent* join engine: it shares no code or
//! geometry with the HTM sweep, so agreement between the two (enforced by
//! property tests) is strong evidence both are correct.

use liferaft_catalog::SkyObject;
use liferaft_htm::vector::ChordBound;
use liferaft_query::QueueEntry;

use crate::types::{JoinOutput, MatchPair};

/// A zone-partitioned copy of one bucket's objects.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    zone_height: f64,
    /// Per zone: (ra, dec, original index), sorted by ra.
    zones: Vec<Vec<(f64, f64, u32)>>,
}

impl ZoneMap {
    /// Builds a zone map with zones of `zone_height` radians of declination.
    ///
    /// # Panics
    /// Panics unless `0 < zone_height ≤ π`.
    pub fn build(objects: &[SkyObject], zone_height: f64) -> Self {
        assert!(
            zone_height > 0.0 && zone_height <= std::f64::consts::PI,
            "zone height must be in (0, π], got {zone_height}"
        );
        let n_zones = (std::f64::consts::PI / zone_height).ceil() as usize;
        let mut zones: Vec<Vec<(f64, f64, u32)>> = vec![Vec::new(); n_zones];
        for (i, o) in objects.iter().enumerate() {
            let (ra, dec) = o.pos.to_radec();
            let z = Self::zone_of_dec(dec, zone_height, n_zones);
            zones[z].push((ra, dec, i as u32));
        }
        for z in &mut zones {
            z.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("RA is finite"));
        }
        ZoneMap { zone_height, zones }
    }

    fn zone_of_dec(dec: f64, h: f64, n_zones: usize) -> usize {
        let idx = ((dec + std::f64::consts::FRAC_PI_2) / h).floor() as isize;
        idx.clamp(0, n_zones as isize - 1) as usize
    }

    /// Number of zones.
    pub fn num_zones(&self) -> usize {
        self.zones.len()
    }

    /// Cross-matches queue entries against the zoned objects.
    ///
    /// `objects` must be the same slice the map was built from (indices in
    /// the output refer to it).
    pub fn crossmatch(&self, objects: &[SkyObject], entries: &[QueueEntry]) -> JoinOutput {
        let mut out = JoinOutput::default();
        let n_zones = self.zones.len();
        for e in entries {
            let (ra, dec) = e.pos.to_radec();
            let r = e.radius;
            let z_lo = Self::zone_of_dec(
                (dec - r).max(-std::f64::consts::FRAC_PI_2),
                self.zone_height,
                n_zones,
            );
            let z_hi = Self::zone_of_dec(
                (dec + r).min(std::f64::consts::FRAC_PI_2),
                self.zone_height,
                n_zones,
            );
            let bound = ChordBound::new(r);
            for z in z_lo..=z_hi {
                self.probe_zone(z, ra, r, bound, e, objects, &mut out);
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_zone(
        &self,
        z: usize,
        ra: f64,
        r: f64,
        bound: ChordBound,
        e: &QueueEntry,
        objects: &[SkyObject],
        out: &mut JoinOutput,
    ) {
        let zone = &self.zones[z];
        if zone.is_empty() {
            return;
        }
        // RA half-width: r / cos(closest |dec| in the probe band), clamped.
        // Near the poles the window degenerates to the full circle.
        let zone_dec_lo = z as f64 * self.zone_height - std::f64::consts::FRAC_PI_2;
        let zone_dec_hi = zone_dec_lo + self.zone_height;
        let max_abs_dec = zone_dec_lo
            .abs()
            .max(zone_dec_hi.abs())
            .min(std::f64::consts::FRAC_PI_2);
        let cos_dec = max_abs_dec.cos();
        let full_circle = cos_dec < 1e-6 || r / cos_dec >= std::f64::consts::PI;
        if full_circle {
            // The RA window spans the whole circle: test every row in the zone.
            for &(_, _, oi) in zone {
                out.candidates_tested += 1;
                if bound.matches(e.pos, objects[oi as usize].pos) {
                    out.pairs.push(MatchPair {
                        query: e.query,
                        object_index: e.object_index,
                        catalog_index: oi,
                    });
                }
            }
            return;
        }
        let dra = r / cos_dec;
        // RA window(s), handling wraparound at 0/2π.
        let lo = ra - dra;
        let hi = ra + dra;
        let mut windows: Vec<(f64, f64)> = Vec::with_capacity(2);
        if lo < 0.0 {
            windows.push((lo + std::f64::consts::TAU, std::f64::consts::TAU));
            windows.push((0.0, hi));
        } else if hi > std::f64::consts::TAU {
            windows.push((lo, std::f64::consts::TAU));
            windows.push((0.0, hi - std::f64::consts::TAU));
        } else {
            windows.push((lo, hi));
        }
        for (wlo, whi) in windows {
            let start = zone.partition_point(|&(ora, _, _)| ora < wlo);
            for &(ora, _, oi) in &zone[start..] {
                if ora > whi {
                    break;
                }
                out.candidates_tested += 1;
                if bound.matches(e.pos, objects[oi as usize].pos) {
                    out.pairs.push(MatchPair {
                        query: e.query,
                        object_index: e.object_index,
                        catalog_index: oi,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use liferaft_catalog::generate::uniform_sky;
    use liferaft_htm::Vec3;
    use liferaft_query::{MatchObject, QueryId};
    use liferaft_storage::SimTime;

    const LEVEL: u8 = 10;

    fn entry_at(pos: Vec3, radius: f64, oi: u32) -> QueueEntry {
        let mo = MatchObject::new(pos, radius, LEVEL);
        QueueEntry {
            query: QueryId(1),
            object_index: oi,
            pos,
            radius,
            bbox: mo.bounding_range(),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        let sky = uniform_sky(400, LEVEL, 21);
        let zm = ZoneMap::build(&sky, 0.02);
        let entries: Vec<QueueEntry> = sky
            .iter()
            .step_by(13)
            .enumerate()
            .map(|(i, o)| {
                let (ra, dec) = o.pos.to_radec_deg();
                entry_at(
                    Vec3::from_radec_deg(ra + 0.004, dec - 0.003),
                    0.015,
                    i as u32,
                )
            })
            .collect();
        let zoned = zm.crossmatch(&sky, &entries);
        let brute = brute_force_join(&sky, &entries);
        assert_eq!(zoned.sorted_pairs(), brute.sorted_pairs());
        assert!(zoned.candidates_tested < brute.candidates_tested);
    }

    #[test]
    fn handles_ra_wraparound() {
        // Objects straddling RA = 0.
        let objs = vec![
            SkyObject::at(Vec3::from_radec_deg(359.9, 0.0), LEVEL, 18.0),
            SkyObject::at(Vec3::from_radec_deg(0.1, 0.0), LEVEL, 18.0),
        ];
        let zm = ZoneMap::build(&objs, 0.02);
        let e = entry_at(Vec3::from_radec_deg(0.0, 0.0), 0.3_f64.to_radians(), 0);
        let out = zm.crossmatch(&objs, &[e]);
        assert_eq!(out.len(), 2, "both sides of the wrap must match");
    }

    #[test]
    fn handles_poles() {
        let objs = vec![
            SkyObject::at(Vec3::from_radec_deg(10.0, 89.9), LEVEL, 18.0),
            SkyObject::at(Vec3::from_radec_deg(200.0, 89.9), LEVEL, 18.0),
        ];
        let zm = ZoneMap::build(&objs, 0.02);
        // A probe at the pole matches both despite wildly different RA.
        let e = entry_at(Vec3::from_radec_deg(0.0, 89.95), 0.5_f64.to_radians(), 0);
        let entries = [e];
        let out = zm.crossmatch(&objs, &entries);
        let brute = brute_force_join(&objs, &entries);
        assert_eq!(out.sorted_pairs(), brute.sorted_pairs());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn zone_count_follows_height() {
        let sky = uniform_sky(10, LEVEL, 1);
        let zm = ZoneMap::build(&sky, 0.1);
        assert_eq!(zm.num_zones(), (std::f64::consts::PI / 0.1).ceil() as usize);
    }

    #[test]
    #[should_panic(expected = "zone height")]
    fn rejects_bad_zone_height() {
        ZoneMap::build(&[], 0.0);
    }
}
