//! The plane-sweep merge join over HTM-sorted data.
//!
//! "Objects in both the bucket and its corresponding workload queue are
//! first sorted by their HTM IDs. The join is performed by simultaneously
//! scanning and merging objects in both the bucket and its workload queue.
//! This is similar to the plane sweeping technique used in Partition Based
//! Spatial-Merge Join" — Section 3.1.
//!
//! The sweep key is the HTM curve: each queue entry carries a bounding
//! range `[lo, hi]` of object-level HTM IDs (its error circle's cover), and
//! the bucket slice is sorted by object HTM ID. Entries sorted by `lo` are
//! merged against the bucket with a shared start cursor; each entry then
//! refines its candidate window `[lo, hi]` with exact chord-distance tests.

use liferaft_catalog::SkyObject;
use liferaft_htm::vector::ChordBound;
use liferaft_query::QueueEntry;

use crate::types::{JoinOutput, MatchPair};

/// Joins one HTM-sorted bucket slice against its workload queue entries.
///
/// Output pairs appear grouped by entry (in `lo`-sorted entry order), with
/// catalog candidates in HTM order within each group.
///
/// # Panics
/// Panics in debug builds if the bucket slice is not HTM-sorted.
pub fn sweep_join(bucket: &[SkyObject], entries: &[QueueEntry]) -> JoinOutput {
    debug_assert!(
        bucket.windows(2).all(|w| w[0].htm <= w[1].htm),
        "bucket slice must be HTM-sorted"
    );
    let mut out = JoinOutput::default();
    if bucket.is_empty() || entries.is_empty() {
        return out;
    }

    // Sort entry references by bounding-box start along the curve.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_unstable_by_key(|&i| entries[i].bbox.lo());

    // Shared start cursor: since entry `lo`s are non-decreasing in sweep
    // order, the first candidate index never moves backwards.
    let mut start = 0usize;
    for &ei in &order {
        let e = &entries[ei];
        let lo = e.bbox.lo();
        let hi = e.bbox.hi();
        while start < bucket.len() && bucket[start].htm < lo {
            start += 1;
        }
        if start == bucket.len() {
            break;
        }
        let bound = ChordBound::new(e.radius);
        let mut j = start;
        while j < bucket.len() && bucket[j].htm <= hi {
            out.candidates_tested += 1;
            if bound.matches(e.pos, bucket[j].pos) {
                out.pairs.push(MatchPair {
                    query: e.query,
                    object_index: e.object_index,
                    catalog_index: j as u32,
                });
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use liferaft_catalog::generate::uniform_sky;
    use liferaft_htm::Vec3;
    use liferaft_query::{MatchObject, QueryId};
    use liferaft_storage::SimTime;

    const LEVEL: u8 = 10;

    fn entry_at(pos: Vec3, radius: f64, query: u64, oi: u32) -> QueueEntry {
        let mo = MatchObject::new(pos, radius, LEVEL);
        QueueEntry {
            query: QueryId(query),
            object_index: oi,
            pos,
            radius,
            bbox: mo.bounding_range(),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let sky = uniform_sky(10, LEVEL, 1);
        assert!(sweep_join(&sky, &[]).is_empty());
        assert!(
            sweep_join(&[], &[entry_at(Vec3::from_radec_deg(0.0, 0.0), 0.01, 1, 0)]).is_empty()
        );
    }

    #[test]
    fn matches_catalog_anchored_entries() {
        // Entries placed exactly on catalog objects must match them.
        let sky = uniform_sky(200, LEVEL, 2);
        let entries: Vec<QueueEntry> = sky
            .iter()
            .step_by(20)
            .enumerate()
            .map(|(i, o)| entry_at(o.pos, 1e-4, 1, i as u32))
            .collect();
        let out = sweep_join(&sky, &entries);
        assert!(
            out.len() >= entries.len(),
            "anchored entries must all match"
        );
    }

    #[test]
    fn agrees_with_brute_force_on_random_sky() {
        let sky = uniform_sky(300, LEVEL, 3);
        let mut entries = Vec::new();
        for (i, o) in sky.iter().step_by(7).enumerate() {
            // Mix of radii, some offset positions.
            let (ra, dec) = o.pos.to_radec_deg();
            let pos = Vec3::from_radec_deg(ra + 0.01, dec - 0.005);
            entries.push(entry_at(
                pos,
                0.02 + (i % 3) as f64 * 0.01,
                i as u64,
                i as u32,
            ));
        }
        let fast = sweep_join(&sky, &entries);
        let slow = brute_force_join(&sky, &entries);
        assert_eq!(fast.sorted_pairs(), slow.sorted_pairs());
        // The sweep must test far fewer candidates than brute force.
        assert!(fast.candidates_tested < slow.candidates_tested);
    }

    #[test]
    fn filter_never_drops_a_true_match() {
        // Adversarial: entry centered at a trixel corner (bbox spans trixels).
        let sky = uniform_sky(500, LEVEL, 4);
        for k in [0usize, 123, 499] {
            let target = &sky[k];
            let e = entry_at(target.pos, 5e-4, 9, k as u32);
            let out = sweep_join(&sky, &[e]);
            assert!(
                out.pairs.iter().any(|p| p.catalog_index == k as u32),
                "sweep lost anchored match {k}"
            );
        }
    }

    #[test]
    fn per_query_attribution_is_preserved() {
        let sky = uniform_sky(100, LEVEL, 5);
        let e1 = entry_at(sky[10].pos, 1e-4, 1, 0);
        let e2 = entry_at(sky[20].pos, 1e-4, 2, 0);
        let out = sweep_join(&sky, &[e1, e2]);
        let counts = out.per_query_counts();
        assert!(counts.iter().any(|&(q, n)| q == QueryId(1) && n >= 1));
        assert!(counts.iter().any(|&(q, n)| q == QueryId(2) && n >= 1));
    }
}
