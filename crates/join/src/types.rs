//! Join inputs and outputs.

use liferaft_query::QueryId;

/// One successful cross-match: a (workload object, catalog object) pair
/// within the error radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchPair {
    /// The query the workload object belongs to.
    pub query: QueryId,
    /// Index of the object within its parent query.
    pub object_index: u32,
    /// Index of the matched catalog object within the bucket slice.
    pub catalog_index: u32,
}

/// The result of joining one bucket against (a subset of) its workload queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinOutput {
    /// All matched pairs, in engine-specific order.
    pub pairs: Vec<MatchPair>,
    /// Candidate pairs whose exact distance was tested (filter selectivity).
    pub candidates_tested: u64,
    /// Index probes performed (indexed engine only; 0 for scans).
    pub probes: u64,
}

impl JoinOutput {
    /// Number of matches.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pair matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pairs sorted canonically — for cross-engine equivalence checks.
    pub fn sorted_pairs(&self) -> Vec<MatchPair> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p
    }

    /// Number of matches credited to each query, in (query, count) pairs
    /// sorted by query — the per-query result separation of Section 3.1.
    pub fn per_query_counts(&self) -> Vec<(QueryId, u64)> {
        let mut sorted: Vec<QueryId> = self.pairs.iter().map(|p| p.query).collect();
        sorted.sort_unstable();
        let mut out: Vec<(QueryId, u64)> = Vec::new();
        for q in sorted {
            match out.last_mut() {
                Some((last, n)) if *last == q => *n += 1,
                _ => out.push((q, 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(q: u64, o: u32, c: u32) -> MatchPair {
        MatchPair {
            query: QueryId(q),
            object_index: o,
            catalog_index: c,
        }
    }

    #[test]
    fn sorted_pairs_is_canonical() {
        let out = JoinOutput {
            pairs: vec![pair(2, 0, 5), pair(1, 3, 2), pair(1, 0, 9)],
            candidates_tested: 10,
            probes: 0,
        };
        assert_eq!(
            out.sorted_pairs(),
            vec![pair(1, 0, 9), pair(1, 3, 2), pair(2, 0, 5)]
        );
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
    }

    #[test]
    fn per_query_counts_groups() {
        let out = JoinOutput {
            pairs: vec![pair(2, 0, 5), pair(1, 3, 2), pair(2, 1, 7), pair(2, 2, 8)],
            candidates_tested: 4,
            probes: 0,
        };
        assert_eq!(
            out.per_query_counts(),
            vec![(QueryId(1), 1), (QueryId(2), 3)]
        );
    }

    #[test]
    fn empty_output() {
        let out = JoinOutput::default();
        assert!(out.is_empty());
        assert!(out.per_query_counts().is_empty());
    }
}
