//! O(N·W) reference join — the oracle the real engines are tested against.

use liferaft_catalog::SkyObject;
use liferaft_query::QueueEntry;

use crate::types::{JoinOutput, MatchPair};

/// Tests every (entry, catalog object) pair by exact angular distance.
///
/// No filtering, no ordering assumptions — deliberately the dumbest possible
/// correct implementation.
pub fn brute_force_join(bucket: &[SkyObject], entries: &[QueueEntry]) -> JoinOutput {
    let mut out = JoinOutput::default();
    for e in entries {
        for (ci, obj) in bucket.iter().enumerate() {
            out.candidates_tested += 1;
            if e.pos.within_angle(obj.pos, e.radius) {
                out.pairs.push(MatchPair {
                    query: e.query,
                    object_index: e.object_index,
                    catalog_index: ci as u32,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_htm::Vec3;
    use liferaft_query::QueryId;
    use liferaft_storage::SimTime;

    fn obj(ra: f64, dec: f64) -> SkyObject {
        SkyObject::at(Vec3::from_radec_deg(ra, dec), 10, 18.0)
    }

    fn entry(ra: f64, dec: f64, radius: f64) -> QueueEntry {
        let pos = Vec3::from_radec_deg(ra, dec);
        QueueEntry {
            query: QueryId(1),
            object_index: 0,
            pos,
            radius,
            bbox: liferaft_htm::HtmRange::full(10),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn finds_exact_coincidence() {
        let bucket = [obj(10.0, 10.0), obj(50.0, -20.0)];
        let out = brute_force_join(&bucket, &[entry(10.0, 10.0, 1e-6)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.pairs[0].catalog_index, 0);
        assert_eq!(out.candidates_tested, 2);
    }

    #[test]
    fn radius_controls_matching() {
        let bucket = [obj(10.0, 10.0)];
        // 0.5° separation: matches at 1° radius, not at 0.1°.
        let near = entry(10.5, 10.0, 1.0_f64.to_radians());
        let far = entry(10.5, 10.0, 0.1_f64.to_radians());
        assert_eq!(brute_force_join(&bucket, &[near]).len(), 1);
        assert_eq!(brute_force_join(&bucket, &[far]).len(), 0);
    }

    #[test]
    fn empty_inputs() {
        assert!(brute_force_join(&[], &[entry(0.0, 0.0, 0.1)]).is_empty());
        assert!(brute_force_join(&[obj(0.0, 0.0)], &[]).is_empty());
    }
}
