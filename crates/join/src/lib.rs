//! Cross-match join engines.
//!
//! A batch joins one bucket's catalog objects against the bucket's workload
//! queue. The paper evaluates batches with a plane-sweep merge over
//! HTM-sorted data ("objects in both the bucket and its corresponding
//! workload queue are first sorted by their HTM IDs. The join is performed
//! by simultaneously scanning and merging", Section 3.1), falls back to an
//! indexed join for small queues (Section 3.4), and cites the Zones
//! algorithm (Gray et al.) as the scan-based cross-match foundation.
//!
//! This crate implements all of them over identical inputs:
//!
//! - [`sweep::sweep_join`] — the production engine: two-pointer merge of the
//!   sorted bucket against queue entries sorted by bounding-box start.
//! - [`indexed::indexed_join`] — probes the bucket's clustered HTM order by
//!   binary search per entry; identical output, different I/O profile.
//! - [`zones::ZoneMap`] — the Zones algorithm: declination bands with
//!   RA-sorted rows; an independent engine used to cross-validate results.
//! - [`brute::brute_force_join`] — O(N·W) reference oracle for tests.
//! - [`hybrid`] — the strategy choice: scan vs. index by queue/bucket ratio
//!   (break-even ≈ 3% in the paper's configuration, Figure 2).
//!
//! All engines return the same multiset of [`MatchPair`]s for the same
//! inputs; property tests in `tests/equivalence.rs` enforce it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod brute;
pub mod hybrid;
pub mod indexed;
pub mod sweep;
pub mod types;
pub mod zones;

pub use hybrid::{HybridConfig, JoinStrategy};
pub use sweep::sweep_join;
pub use types::{JoinOutput, MatchPair};
