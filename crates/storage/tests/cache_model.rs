//! Property tests: the bucket cache against a reference LRU model.

use liferaft_storage::{BucketCache, BucketId};
use proptest::prelude::*;

/// The dumbest possible correct LRU: a vector ordered least-recent first.
struct ReferenceLru {
    capacity: usize,
    order: Vec<u32>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ReferenceLru {
    fn new(capacity: usize) -> Self {
        ReferenceLru {
            capacity,
            order: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn access(&mut self, id: u32) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
            self.order.push(id);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            if self.order.len() == self.capacity {
                self.order.remove(0);
                self.evictions += 1;
            }
            self.order.push(id);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hit/miss/eviction behaviour matches the reference exactly for any
    /// access sequence and capacity.
    #[test]
    fn cache_matches_reference_model(
        capacity in 1usize..16,
        accesses in proptest::collection::vec(0u32..24, 0..200),
    ) {
        let mut cache = BucketCache::new(capacity);
        let mut reference = ReferenceLru::new(capacity);
        for &a in &accesses {
            let got = cache.access(BucketId(a));
            let want = reference.access(a);
            prop_assert_eq!(got, want, "divergence at access {}", a);
            prop_assert!(cache.len() <= capacity);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, reference.hits);
        prop_assert_eq!(stats.misses, reference.misses);
        prop_assert_eq!(stats.evictions, reference.evictions);
        // Residency sets agree.
        let resident: Vec<u32> = cache.resident_lru_order().map(|b| b.0).collect();
        prop_assert_eq!(resident, reference.order);
    }

    /// `contains` never mutates observable state.
    #[test]
    fn contains_is_pure(
        capacity in 1usize..8,
        warm in proptest::collection::vec(0u32..10, 0..20),
        probes in proptest::collection::vec(0u32..10, 0..50),
    ) {
        let mut cache = BucketCache::new(capacity);
        for &a in &warm {
            cache.access(BucketId(a));
        }
        let before: Vec<u32> = cache.resident_lru_order().map(|b| b.0).collect();
        let stats_before = cache.stats();
        for &p in &probes {
            let _ = cache.contains(BucketId(p));
        }
        let after: Vec<u32> = cache.resident_lru_order().map(|b| b.0).collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(stats_before, cache.stats());
    }
}
