//! A parameterized rotating-disk model.
//!
//! LifeRaft's scheduling decisions hinge on the asymmetry between one large
//! sequential bucket scan (amortized seek, full transfer rate) and many
//! random index probes (a seek plus rotational latency per page). The paper
//! measured the end points empirically (`Tb`, and Figure 2's probe costs);
//! we derive them from disk geometry so that experiments at other bucket
//! sizes remain self-consistent.

use crate::simtime::SimDuration;

/// Physical parameters of a (simulated) disk subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time in milliseconds.
    pub seek_ms: f64,
    /// Average rotational latency in milliseconds (half a revolution).
    pub rotational_ms: f64,
    /// Sustained sequential transfer rate in MB/s.
    pub transfer_mb_per_s: f64,
    /// Page size for random reads, in bytes.
    pub page_bytes: u64,
    /// Effective parallelism of independent random reads across the array.
    ///
    /// The paper's testbed stripes data "across 15 sets of mirrored disks";
    /// a stream of index probes keeps several spindles seeking at once, so
    /// the *effective* per-probe latency is the single-disk latency divided
    /// by this factor. Sequential scans don't benefit (they are already
    /// transfer-bound on the striped volume).
    pub random_concurrency: f64,
}

impl DiskModel {
    /// Defaults calibrated so a 40 MB bucket scan costs ≈ the paper's
    /// `Tb = 1.2 s` (Section 5: "we empirically derived constants Tb and Tm
    /// as 1.2 seconds and 0.13 milliseconds").
    ///
    /// 8 ms seek + 4.17 ms rotation (7200 rpm) + 40 MB / 33.7 MB/s ≈ 1.199 s.
    /// The modest effective rate reflects that the paper flushes the DBMS
    /// buffer after every bucket read and shares the array with the server.
    pub fn paper_default() -> Self {
        DiskModel {
            seek_ms: 8.0,
            rotational_ms: 4.17,
            transfer_mb_per_s: 33.7,
            page_bytes: 8 * 1024,
            random_concurrency: 3.2,
        }
    }

    /// Time to seek and sequentially read `bytes` bytes.
    pub fn sequential_read(&self, bytes: u64) -> SimDuration {
        let transfer_s = bytes as f64 / (self.transfer_mb_per_s * 1024.0 * 1024.0);
        SimDuration::from_secs_f64((self.seek_ms + self.rotational_ms) / 1e3 + transfer_s)
    }

    /// Time for one random page read (index probe) on a single spindle:
    /// seek + rotation + one page.
    pub fn random_page_read(&self) -> SimDuration {
        self.sequential_read(self.page_bytes)
    }

    /// Effective time per probe in a stream of independent random reads over
    /// the striped array (single-spindle latency / [`random_concurrency`]).
    ///
    /// [`random_concurrency`]: DiskModel::random_concurrency
    pub fn striped_page_read(&self) -> SimDuration {
        let single = self.random_page_read().as_secs_f64();
        SimDuration::from_secs_f64(single / self.random_concurrency.max(1.0))
    }

    /// Effective sequential bandwidth over a read of `bytes` bytes, MB/s
    /// (includes the positioning overhead).
    pub fn effective_bandwidth_mb_per_s(&self, bytes: u64) -> f64 {
        let t = self.sequential_read(bytes).as_secs_f64();
        bytes as f64 / (1024.0 * 1024.0) / t
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn forty_mb_bucket_costs_about_tb() {
        let d = DiskModel::paper_default();
        let tb = d.sequential_read(40 * MB).as_secs_f64();
        assert!(
            (tb - 1.2).abs() < 0.01,
            "40MB scan should cost ~1.2s, got {tb}"
        );
    }

    #[test]
    fn random_page_read_is_milliseconds() {
        let d = DiskModel::paper_default();
        let probe = d.random_page_read().as_millis_f64();
        // seek 8 + rot 4.17 + 8KB transfer (~0.23ms) ≈ 12.4 ms
        assert!((12.0..13.0).contains(&probe), "probe cost {probe} ms");
    }

    #[test]
    fn sequential_beats_random_per_byte() {
        let d = DiskModel::paper_default();
        let seq = d.sequential_read(40 * MB).as_secs_f64() / (40.0 * 1024.0 * 1024.0);
        let rand = d.random_page_read().as_secs_f64() / d.page_bytes as f64;
        assert!(
            rand > 50.0 * seq,
            "random I/O should be far costlier per byte"
        );
    }

    #[test]
    fn effective_bandwidth_approaches_rated() {
        let d = DiskModel::paper_default();
        let small = d.effective_bandwidth_mb_per_s(MB);
        let big = d.effective_bandwidth_mb_per_s(1024 * MB);
        assert!(small < big);
        assert!(big <= d.transfer_mb_per_s);
        assert!(big > d.transfer_mb_per_s * 0.99);
    }

    #[test]
    fn zero_byte_read_costs_positioning_only() {
        let d = DiskModel::paper_default();
        let t = d.sequential_read(0).as_millis_f64();
        assert!((t - (d.seek_ms + d.rotational_ms)).abs() < 1e-9);
    }
}
