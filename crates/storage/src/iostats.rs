//! Aggregate I/O accounting for experiment reports.

use crate::simtime::SimDuration;

/// Counters describing the I/O work a run performed.
///
/// LifeRaft's claim is that data-driven batching "eliminates random and
/// redundant disk accesses"; these counters are how the experiments verify
/// it (bucket reads saved by sharing, probes spent by the hybrid strategy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Full bucket scans issued to the (simulated) disk.
    pub bucket_reads: u64,
    /// Bytes transferred by bucket scans.
    pub bytes_scanned: u64,
    /// Random index probes issued.
    pub index_probes: u64,
    /// Virtual time spent in sequential scans.
    pub scan_time: SimDuration,
    /// Virtual time spent in random probes.
    pub probe_time: SimDuration,
    /// Virtual time spent matching objects in memory.
    pub match_time: SimDuration,
}

impl IoStats {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a bucket scan of `bytes` costing `t`.
    pub fn record_scan(&mut self, bytes: u64, t: SimDuration) {
        self.bucket_reads += 1;
        self.bytes_scanned += bytes;
        self.scan_time += t;
    }

    /// Records `n` index probes costing `t` in total.
    pub fn record_probes(&mut self, n: u64, t: SimDuration) {
        self.index_probes += n;
        self.probe_time += t;
    }

    /// Records in-memory match work costing `t`.
    pub fn record_match(&mut self, t: SimDuration) {
        self.match_time += t;
    }

    /// Total accounted virtual time.
    pub fn total_time(&self) -> SimDuration {
        self.scan_time + self.probe_time + self.match_time
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, o: &IoStats) {
        self.bucket_reads += o.bucket_reads;
        self.bytes_scanned += o.bytes_scanned;
        self.index_probes += o.index_probes;
        self.scan_time += o.scan_time;
        self.probe_time += o.probe_time;
        self.match_time += o.match_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut s = IoStats::new();
        s.record_scan(40, SimDuration::from_secs(1));
        s.record_scan(40, SimDuration::from_secs(1));
        s.record_probes(10, SimDuration::from_millis(40));
        s.record_match(SimDuration::from_millis(130));
        assert_eq!(s.bucket_reads, 2);
        assert_eq!(s.bytes_scanned, 80);
        assert_eq!(s.index_probes, 10);
        assert_eq!(s.total_time().as_millis_f64(), 2170.0);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = IoStats::new();
        a.record_scan(10, SimDuration::from_secs(1));
        let mut b = IoStats::new();
        b.record_probes(3, SimDuration::from_millis(30));
        b.record_match(SimDuration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.bucket_reads, 1);
        assert_eq!(a.index_probes, 3);
        assert_eq!(a.total_time().as_millis_f64(), 1035.0);
    }

    #[test]
    fn default_is_zero() {
        let s = IoStats::default();
        assert_eq!(s.total_time(), SimDuration::ZERO);
        assert_eq!(s.bucket_reads, 0);
    }
}
