//! Virtual time for the discrete-event simulation.
//!
//! All experiment timing (arrival timestamps, batch costs, response times)
//! is expressed in integer microseconds of *virtual* time, which makes runs
//! deterministic and independent of host speed. Microsecond resolution keeps
//! the paper's smallest constant (`Tm = 0.13 ms = 130 µs`) exact.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds since epoch as a float (the paper's age unit).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`: negative elapsed time is
    /// always an event-ordering bug in the simulator.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s} s");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration scaled by an integer count (e.g. `Tm × W`).
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(n).expect("duration overflow"))
    }

    /// Saturating difference.
    pub fn saturating_sub(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(o.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("sim time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(o.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, o: SimDuration) {
        *self = *self + o;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, o: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(o.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.2).as_micros(), 1_200_000);
        assert_eq!(SimDuration::from_millis_f64(0.13).as_micros(), 130);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(t1.as_secs_f64(), 5.0);
        assert_eq!(t1.since(t0).as_secs_f64(), 5.0);
        let mut t = t1;
        t += SimDuration::from_millis(500);
        assert_eq!(t.as_millis_f64(), 5500.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_reversed_order() {
        SimTime::ZERO.since(SimTime::from_micros(1));
    }

    #[test]
    fn duration_arithmetic() {
        let tm = SimDuration::from_millis_f64(0.13);
        assert_eq!(tm.times(10_000).as_secs_f64(), 1.3);
        let a = SimDuration::from_secs(2);
        let b = SimDuration::from_secs(1);
        assert_eq!((a - b).as_secs_f64(), 1.0);
        assert_eq!(a.saturating_sub(b), b);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        let sum: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(sum.as_secs_f64(), 4.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn checked_sub_panics() {
        let _ = SimDuration::from_secs(1) - SimDuration::from_secs(2);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_negative_float() {
        SimDuration::from_secs_f64(-0.1);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12µs");
        assert_eq!(SimDuration::from_micros(1_300).to_string(), "1.300ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "t=1.500s");
    }
}
