//! Simulated storage substrate for LifeRaft.
//!
//! The paper evaluates LifeRaft on SQL Server 2005 over a 6 TB SDSS archive
//! striped across 15 mirrored disk sets, but reduces storage behaviour to an
//! explicit cost model: reading a 40 MB bucket costs `Tb = 1.2 s`, matching
//! one object in memory costs `Tm = 0.13 ms`, and an LRU cache of 20 buckets
//! is managed *outside* the DBMS (the server's buffer is flushed after every
//! bucket read). This crate is that storage layer, made explicit:
//!
//! - [`SimTime`]/[`SimDuration`] — virtual time in microseconds,
//! - [`DiskModel`] — seek/rotation/transfer geometry for sequential bucket
//!   scans and random index probes,
//! - [`CostModel`] — the paper's constants (`Tb`, `Tm`, probe cost, index
//!   overhead) derived from a [`DiskModel`] or set directly,
//! - [`BucketId`]/[`BucketMeta`] — bucket identity and extent metadata,
//! - [`BucketCache`] — the LRU bucket cache with hit/miss accounting
//!   (the φ(i) term of the workload throughput metric),
//! - [`IoStats`] — I/O counters reported by experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bucket;
pub mod cache;
pub mod cost;
pub mod disk;
pub mod iostats;
pub mod simtime;

pub use bucket::{BucketId, BucketMeta};
pub use cache::{BucketCache, ResidencyMutation};
pub use cost::CostModel;
pub use disk::DiskModel;
pub use iostats::IoStats;
pub use simtime::{SimDuration, SimTime};
