//! The LRU bucket cache.
//!
//! "The Bucket Cache either reads an existing bucket from memory or executes
//! a range query to ask for the bucket from the database server. (We use a
//! simple least recently used policy for cache replacement)" — Section 4.
//! The experiments fix the capacity at 20 buckets and flush the DBMS buffer
//! after every read, so this cache is the *only* source of I/O savings;
//! its `contains` answer is exactly the φ(i) term of Eq. 1.
//!
//! The recency order is an intrusive doubly-linked list threaded through a
//! slab of nodes, so `access`/`insert`/evict are all O(1) — the paper's 20
//! buckets never noticed, but per-shard thousand-bucket caches would have
//! paid O(resident) per touch under the previous `VecDeque::remove`.

use std::collections::{HashMap, VecDeque};

use crate::bucket::BucketId;

/// One residency change: at `epoch`, `bucket` became (or stopped being)
/// resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyMutation {
    /// The epoch the cache reported *after* this change.
    pub epoch: u64,
    /// The bucket whose residency flipped.
    pub bucket: BucketId,
    /// Its residency after the change.
    pub resident: bool,
}

/// How many residency mutations the cache remembers. Decision loops sync
/// once per batch and a batch mutates at most two buckets (one eviction,
/// one insertion), so a small window is ample; consumers that fall behind
/// the window re-probe from scratch.
const MUTATION_LOG_CAP: usize = 64;

/// Cache access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the bucket resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Buckets evicted to make room.
    pub evictions: u64,
    /// Buckets inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 if none) — the Section 6 statistic
    /// ("40% and 7% of requests serviced from the cache").
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds another accumulator into this one (per-shard → global roll-up).
    pub fn merge(&mut self, o: &CacheStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
        self.insertions += o.insertions;
    }
}

/// Slab sentinel for "no neighbour".
const NIL: u32 = u32::MAX;

/// One slab node of the intrusive recency list.
#[derive(Debug, Clone, Copy)]
struct Node {
    id: BucketId,
    prev: u32,
    next: u32,
}

/// A least-recently-used cache of bucket residency.
///
/// Stores only identities, not payloads: the simulator tracks *which*
/// buckets are memory-resident for cost accounting, while actual object
/// data is materialized on demand by the catalog.
#[derive(Debug, Clone)]
pub struct BucketCache {
    capacity: usize,
    /// Slab of resident entries; `nodes.len()` == resident count (evictions
    /// reuse the victim's slot, so the slab never exceeds `capacity`).
    nodes: Vec<Node>,
    /// Least-recently-used end of the intrusive list (`NIL` when empty).
    head: u32,
    /// Most-recently-used end of the intrusive list (`NIL` when empty).
    tail: u32,
    /// Bucket → slab slot, for O(1) membership and unlinking.
    slot_of: HashMap<BucketId, u32>,
    stats: CacheStats,
    /// Bumped whenever the *resident set* may have changed (insert, evict,
    /// clear) — never on a pure recency touch. See [`residency_epoch`](Self::residency_epoch).
    epoch: u64,
    /// Recent residency changes, oldest first (see [`mutations_since`](Self::mutations_since)).
    log: VecDeque<ResidencyMutation>,
    /// Epoch from which `log` is complete: every residency change with
    /// `epoch > log_floor` is present in the log.
    log_floor: u64,
}

impl BucketCache {
    /// Creates a cache holding at most `capacity` buckets.
    ///
    /// # Panics
    /// Panics if capacity is zero (the paper's smallest analogue is the
    /// single-bucket "Map-Reduce" case; zero makes φ degenerate).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BucketCache {
            capacity,
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            slot_of: HashMap::with_capacity(capacity + 1),
            stats: CacheStats::default(),
            epoch: 1,
            log: VecDeque::with_capacity(MUTATION_LOG_CAP),
            log_floor: 1,
        }
    }

    /// Appends a residency change to the bounded log, advancing the floor
    /// when the window overflows.
    fn log_mutation(&mut self, bucket: BucketId, resident: bool) {
        if self.log.len() == MUTATION_LOG_CAP {
            let dropped = self.log.pop_front().expect("log is full, so non-empty");
            self.log_floor = dropped.epoch;
        }
        self.log.push_back(ResidencyMutation {
            epoch: self.epoch,
            bucket,
            resident,
        });
    }

    /// The residency changes that happened after `epoch`, oldest first, or
    /// `None` if the bounded log no longer reaches back that far (the caller
    /// must then re-probe residency from scratch).
    ///
    /// A consumer that remembers φ bits probed at epoch `e` can replay
    /// `mutations_since(e)` to bring them up to [`residency_epoch`](Self::residency_epoch)
    /// without touching the unaffected buckets.
    pub fn mutations_since(
        &self,
        epoch: u64,
    ) -> Option<impl Iterator<Item = ResidencyMutation> + '_> {
        if epoch < self.log_floor {
            return None;
        }
        let start = self.log.partition_point(|m| m.epoch <= epoch);
        Some(self.log.iter().skip(start).copied())
    }

    /// The paper's experimental configuration: 20 buckets (Section 5).
    pub fn paper_default() -> Self {
        Self::new(20)
    }

    /// Capacity in buckets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident buckets.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A stamp that changes whenever the resident set may have changed.
    ///
    /// Recency touches do **not** bump it: the φ(i) bits a scheduler cached
    /// at epoch `e` remain valid for as long as `residency_epoch()` still
    /// returns `e`, which is what lets the workload table skip per-candidate
    /// residency probes between cache mutations.
    pub fn residency_epoch(&self) -> u64 {
        self.epoch
    }

    /// Non-mutating residency probe: φ(i) = 0 iff `contains(i)`.
    ///
    /// Does **not** update recency or statistics — the scheduler calls this
    /// for *every* candidate bucket on every decision, which must not
    /// perturb the LRU order.
    pub fn contains(&self, id: BucketId) -> bool {
        self.slot_of.contains_key(&id)
    }

    /// Performs an access as part of executing a batch: returns `true` on a
    /// hit (bucket already resident, moved to most-recent) or `false` on a
    /// miss (bucket loaded, possibly evicting the least-recently-used one).
    pub fn access(&mut self, id: BucketId) -> bool {
        if let Some(&slot) = self.slot_of.get(&id) {
            self.touch(slot);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            self.insert(id);
            false
        }
    }

    /// Records a lookup that bypasses the cache entirely (e.g. an indexed
    /// join probing random pages): counts a miss, loads nothing.
    pub fn record_bypass(&mut self) {
        self.stats.misses += 1;
    }

    /// Unlinks a slot from the recency list (its `prev`/`next` stay stale).
    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    /// Appends a slot at the most-recently-used end.
    fn push_mru(&mut self, slot: u32) {
        let old_tail = self.tail;
        {
            let node = &mut self.nodes[slot as usize];
            node.prev = old_tail;
            node.next = NIL;
        }
        match old_tail {
            NIL => self.head = slot,
            t => self.nodes[t as usize].next = slot,
        }
        self.tail = slot;
    }

    /// Moves a resident slot to most-recently-used — O(1).
    fn touch(&mut self, slot: u32) {
        if self.tail == slot {
            return;
        }
        self.unlink(slot);
        self.push_mru(slot);
    }

    /// Inserts a bucket, evicting the LRU entry if full. Returns the evicted
    /// bucket, if any.
    pub fn insert(&mut self, id: BucketId) -> Option<BucketId> {
        if let Some(&slot) = self.slot_of.get(&id) {
            self.touch(slot);
            return None;
        }
        self.stats.insertions += 1;
        self.epoch += 1;
        let mut evicted = None;
        let slot = if self.nodes.len() == self.capacity {
            // Evict the LRU head and reuse its slab slot for the newcomer.
            let victim_slot = self.head;
            debug_assert_ne!(victim_slot, NIL, "cache is full, so non-empty");
            let victim = self.nodes[victim_slot as usize].id;
            self.unlink(victim_slot);
            self.slot_of.remove(&victim);
            self.stats.evictions += 1;
            self.log_mutation(victim, false);
            evicted = Some(victim);
            self.nodes[victim_slot as usize].id = id;
            victim_slot
        } else {
            self.nodes.push(Node {
                id,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.push_mru(slot);
        self.slot_of.insert(id, slot);
        self.log_mutation(id, true);
        evicted
    }

    /// Removes one bucket from the resident set (the elastic runtime's
    /// residency handoff: the shard that loses a bucket drops it here, the
    /// shard that gains it warms it with [`insert`](Self::insert)). Returns
    /// `false` if the bucket was not resident.
    ///
    /// Counts neither a hit nor an eviction — the bucket is not being
    /// replaced under capacity pressure, it is leaving with its work. The
    /// residency epoch advances and the change enters the mutation log, so
    /// φ consumers resync exactly like after an eviction.
    pub fn remove(&mut self, id: BucketId) -> bool {
        let Some(slot) = self.slot_of.remove(&id) else {
            return false;
        };
        self.unlink(slot);
        self.epoch += 1;
        self.log_mutation(id, false);
        // Keep the slab dense (`nodes.len()` == resident count): move the
        // last node into the vacated slot and repair its neighbours' links.
        let last = (self.nodes.len() - 1) as u32;
        if slot != last {
            let moved = self.nodes[last as usize];
            self.nodes[slot as usize] = moved;
            match moved.prev {
                NIL => self.head = slot,
                p => self.nodes[p as usize].next = slot,
            }
            match moved.next {
                NIL => self.tail = slot,
                n => self.nodes[n as usize].prev = slot,
            }
            self.slot_of.insert(moved.id, slot);
        }
        self.nodes.pop();
        true
    }

    /// Drops everything (the experiments' between-run flush).
    ///
    /// The mutation log does not enumerate a flush; consumers synced before
    /// the flush observe a truncated log and re-probe from scratch.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.slot_of.clear();
        self.head = NIL;
        self.tail = NIL;
        self.epoch += 1;
        self.log.clear();
        self.log_floor = self.epoch;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident buckets from least- to most-recently used.
    pub fn resident_lru_order(&self) -> impl Iterator<Item = BucketId> + '_ {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let node = &self.nodes[cursor as usize];
            cursor = node.next;
            Some(node.id)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_until_capacity_then_evict_lru() {
        let mut c = BucketCache::new(2);
        assert_eq!(c.insert(BucketId(1)), None);
        assert_eq!(c.insert(BucketId(2)), None);
        assert_eq!(c.len(), 2);
        // 1 is LRU, so inserting 3 evicts it.
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(1)));
        assert!(!c.contains(BucketId(1)));
        assert!(c.contains(BucketId(2)));
        assert!(c.contains(BucketId(3)));
    }

    #[test]
    fn access_updates_recency() {
        let mut c = BucketCache::new(2);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        // Touch 1 so 2 becomes LRU.
        assert!(c.access(BucketId(1)));
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(2)));
        assert!(c.contains(BucketId(1)));
    }

    #[test]
    fn access_counts_hits_and_misses() {
        let mut c = BucketCache::new(2);
        assert!(!c.access(BucketId(5))); // miss + load
        assert!(c.access(BucketId(5))); // hit
        assert!(c.access(BucketId(5))); // hit
        assert!(!c.access(BucketId(6))); // miss
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.insertions, 2);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_does_not_perturb_lru_or_stats() {
        let mut c = BucketCache::new(2);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        // Probe 1 many times; it must stay LRU.
        for _ in 0..10 {
            assert!(c.contains(BucketId(1)));
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(1)));
    }

    #[test]
    fn reinsert_resident_only_touches() {
        let mut c = BucketCache::new(2);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        assert_eq!(c.insert(BucketId(1)), None); // touch, no insert
        assert_eq!(c.stats().insertions, 2);
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(2)));
    }

    #[test]
    fn bypass_counts_miss_without_loading() {
        let mut c = BucketCache::new(2);
        c.record_bypass();
        assert_eq!(c.stats().misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut c = BucketCache::new(2);
        c.access(BucketId(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = BucketCache::new(3);
        for i in 0..100 {
            c.access(BucketId(i % 7));
            assert!(c.len() <= 3);
        }
        assert_eq!(c.stats().evictions, c.stats().insertions - 3);
    }

    #[test]
    fn lru_order_iterates_oldest_first() {
        let mut c = BucketCache::new(3);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        c.insert(BucketId(3));
        c.access(BucketId(1));
        let order: Vec<_> = c.resident_lru_order().collect();
        assert_eq!(order, vec![BucketId(2), BucketId(3), BucketId(1)]);
    }

    #[test]
    fn epoch_tracks_residency_changes_only() {
        let mut c = BucketCache::new(2);
        let e0 = c.residency_epoch();
        c.insert(BucketId(1));
        let e1 = c.residency_epoch();
        assert_ne!(e0, e1, "insert changes the resident set");
        // Hits touch recency but leave the resident set alone.
        c.access(BucketId(1));
        c.insert(BucketId(1));
        assert_eq!(c.residency_epoch(), e1);
        // A miss loads (and may evict): the set changed.
        c.access(BucketId(2));
        assert_ne!(c.residency_epoch(), e1);
        let e2 = c.residency_epoch();
        c.clear();
        assert_ne!(c.residency_epoch(), e2);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            insertions: 4,
        };
        a.merge(&CacheStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            insertions: 40,
        });
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 22);
        assert_eq!(a.evictions, 33);
        assert_eq!(a.insertions, 44);
    }

    /// The intrusive list must agree with a straightforward VecDeque model
    /// under a long adversarial access pattern.
    #[test]
    fn model_check_against_vecdeque_lru() {
        use std::collections::VecDeque;
        let mut c = BucketCache::new(4);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..5_000 {
            // xorshift for a deterministic, scattered id stream over 9 ids.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let id = (x % 9) as u32;
            c.access(BucketId(id));
            if let Some(pos) = model.iter().position(|&b| b == id) {
                model.remove(pos);
            } else if model.len() == 4 {
                model.pop_front();
            }
            model.push_back(id);
            let got: Vec<u32> = c.resident_lru_order().map(|b| b.0).collect();
            let want: Vec<u32> = model.iter().copied().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn remove_unlinks_and_logs_without_counting_an_eviction() {
        let mut c = BucketCache::new(3);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        c.insert(BucketId(3));
        let e = c.residency_epoch();
        assert!(c.remove(BucketId(2)));
        assert!(!c.contains(BucketId(2)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_ne!(c.residency_epoch(), e, "removal changes the resident set");
        let muts: Vec<_> = c.mutations_since(e).expect("within window").collect();
        assert_eq!(
            muts.iter()
                .map(|m| (m.bucket.0, m.resident))
                .collect::<Vec<_>>(),
            vec![(2, false)]
        );
        // Recency order of the survivors is preserved.
        let order: Vec<_> = c.resident_lru_order().map(|b| b.0).collect();
        assert_eq!(order, vec![1, 3]);
        // Removing an absent bucket is a no-op (no epoch bump).
        let e2 = c.residency_epoch();
        assert!(!c.remove(BucketId(2)));
        assert_eq!(c.residency_epoch(), e2);
    }

    /// Interleave remove with access against the VecDeque model — the
    /// slab-compaction path (moving the last node into the vacated slot)
    /// must leave every surviving link intact.
    #[test]
    fn model_check_remove_against_vecdeque_lru() {
        use std::collections::VecDeque;
        let mut c = BucketCache::new(4);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut x: u64 = 0x9E37_79B9;
        for step in 0..5_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let id = (x % 9) as u32;
            if step % 3 == 2 {
                let removed = c.remove(BucketId(id));
                let pos = model.iter().position(|&b| b == id);
                assert_eq!(removed, pos.is_some());
                if let Some(pos) = pos {
                    model.remove(pos);
                }
            } else {
                c.access(BucketId(id));
                if let Some(pos) = model.iter().position(|&b| b == id) {
                    model.remove(pos);
                } else if model.len() == 4 {
                    model.pop_front();
                }
                model.push_back(id);
            }
            let got: Vec<u32> = c.resident_lru_order().map(|b| b.0).collect();
            let want: Vec<u32> = model.iter().copied().collect();
            assert_eq!(got, want, "step {step}");
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BucketCache::new(0);
    }

    #[test]
    fn mutation_log_replays_residency_changes() {
        let mut c = BucketCache::new(2);
        let e0 = c.residency_epoch();
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        c.insert(BucketId(3)); // evicts 1
        let muts: Vec<_> = c.mutations_since(e0).expect("within window").collect();
        assert_eq!(
            muts.iter()
                .map(|m| (m.bucket.0, m.resident))
                .collect::<Vec<_>>(),
            vec![(1, true), (2, true), (1, false), (3, true)]
        );
        // Replaying the log over the pre-mutation resident set (empty)
        // reproduces the live resident set exactly.
        let mut model = std::collections::HashSet::new();
        for m in muts {
            if m.resident {
                model.insert(m.bucket);
            } else {
                model.remove(&m.bucket);
            }
        }
        for b in 0..5u32 {
            assert_eq!(model.contains(&BucketId(b)), c.contains(BucketId(b)), "{b}");
        }
        // Syncing from the current epoch yields no mutations.
        assert_eq!(c.mutations_since(c.residency_epoch()).unwrap().count(), 0);
    }

    #[test]
    fn mutation_log_window_and_flush_force_reprobe() {
        let mut c = BucketCache::new(1);
        let e0 = c.residency_epoch();
        // Each miss is one insert + (from the second on) one eviction; blow
        // well past the window.
        for i in 0..200u32 {
            c.access(BucketId(i));
        }
        assert!(c.mutations_since(e0).is_none(), "window must be bounded");
        // Recent epochs still replay.
        let e1 = c.residency_epoch();
        c.access(BucketId(999));
        assert_eq!(c.mutations_since(e1).unwrap().count(), 2);
        // A flush truncates the log unconditionally.
        let e2 = c.residency_epoch();
        c.clear();
        assert!(c.mutations_since(e2).is_none());
        assert_eq!(c.mutations_since(c.residency_epoch()).unwrap().count(), 0);
    }

    #[test]
    fn touches_do_not_enter_the_mutation_log() {
        let mut c = BucketCache::new(2);
        c.insert(BucketId(1));
        let e = c.residency_epoch();
        c.access(BucketId(1)); // hit: recency only
        c.insert(BucketId(1)); // resident re-insert: touch only
        assert_eq!(c.mutations_since(e).unwrap().count(), 0);
    }
}
