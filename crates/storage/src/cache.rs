//! The LRU bucket cache.
//!
//! "The Bucket Cache either reads an existing bucket from memory or executes
//! a range query to ask for the bucket from the database server. (We use a
//! simple least recently used policy for cache replacement)" — Section 4.
//! The experiments fix the capacity at 20 buckets and flush the DBMS buffer
//! after every read, so this cache is the *only* source of I/O savings;
//! its `contains` answer is exactly the φ(i) term of Eq. 1.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::bucket::BucketId;

/// Cache access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the bucket resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Buckets evicted to make room.
    pub evictions: u64,
    /// Buckets inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 if none) — the Section 6 statistic
    /// ("40% and 7% of requests serviced from the cache").
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A least-recently-used cache of bucket residency.
///
/// Stores only identities, not payloads: the simulator tracks *which*
/// buckets are memory-resident for cost accounting, while actual object
/// data is materialized on demand by the catalog.
#[derive(Debug, Clone)]
pub struct BucketCache {
    capacity: usize,
    /// Recency queue, most-recent at the back.
    queue: VecDeque<BucketId>,
    /// Residency set mirroring `queue` for O(1) membership.
    resident: HashMap<BucketId, ()>,
    stats: CacheStats,
}

impl BucketCache {
    /// Creates a cache holding at most `capacity` buckets.
    ///
    /// # Panics
    /// Panics if capacity is zero (the paper's smallest analogue is the
    /// single-bucket "Map-Reduce" case; zero makes φ degenerate).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BucketCache {
            capacity,
            queue: VecDeque::with_capacity(capacity + 1),
            resident: HashMap::with_capacity(capacity + 1),
            stats: CacheStats::default(),
        }
    }

    /// The paper's experimental configuration: 20 buckets (Section 5).
    pub fn paper_default() -> Self {
        Self::new(20)
    }

    /// Capacity in buckets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident buckets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Non-mutating residency probe: φ(i) = 0 iff `contains(i)`.
    ///
    /// Does **not** update recency or statistics — the scheduler calls this
    /// for *every* candidate bucket on every decision, which must not
    /// perturb the LRU order.
    pub fn contains(&self, id: BucketId) -> bool {
        self.resident.contains_key(&id)
    }

    /// Performs an access as part of executing a batch: returns `true` on a
    /// hit (bucket already resident, moved to most-recent) or `false` on a
    /// miss (bucket loaded, possibly evicting the least-recently-used one).
    pub fn access(&mut self, id: BucketId) -> bool {
        if self.contains(id) {
            self.touch(id);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            self.insert(id);
            false
        }
    }

    /// Records a lookup that bypasses the cache entirely (e.g. an indexed
    /// join probing random pages): counts a miss, loads nothing.
    pub fn record_bypass(&mut self) {
        self.stats.misses += 1;
    }

    /// Moves a resident bucket to most-recently-used.
    fn touch(&mut self, id: BucketId) {
        debug_assert!(self.contains(id));
        if let Some(pos) = self.queue.iter().position(|&b| b == id) {
            self.queue.remove(pos);
            self.queue.push_back(id);
        }
    }

    /// Inserts a bucket, evicting the LRU entry if full. Returns the evicted
    /// bucket, if any.
    pub fn insert(&mut self, id: BucketId) -> Option<BucketId> {
        if self.contains(id) {
            self.touch(id);
            return None;
        }
        self.stats.insertions += 1;
        let mut evicted = None;
        if self.queue.len() == self.capacity {
            let victim = self.queue.pop_front().expect("cache is full, so non-empty");
            self.resident.remove(&victim);
            self.stats.evictions += 1;
            evicted = Some(victim);
        }
        self.queue.push_back(id);
        self.resident.insert(id, ());
        evicted
    }

    /// Drops everything (the experiments' between-run flush).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.resident.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident buckets from least- to most-recently used.
    pub fn resident_lru_order(&self) -> impl Iterator<Item = BucketId> + '_ {
        self.queue.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_until_capacity_then_evict_lru() {
        let mut c = BucketCache::new(2);
        assert_eq!(c.insert(BucketId(1)), None);
        assert_eq!(c.insert(BucketId(2)), None);
        assert_eq!(c.len(), 2);
        // 1 is LRU, so inserting 3 evicts it.
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(1)));
        assert!(!c.contains(BucketId(1)));
        assert!(c.contains(BucketId(2)));
        assert!(c.contains(BucketId(3)));
    }

    #[test]
    fn access_updates_recency() {
        let mut c = BucketCache::new(2);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        // Touch 1 so 2 becomes LRU.
        assert!(c.access(BucketId(1)));
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(2)));
        assert!(c.contains(BucketId(1)));
    }

    #[test]
    fn access_counts_hits_and_misses() {
        let mut c = BucketCache::new(2);
        assert!(!c.access(BucketId(5))); // miss + load
        assert!(c.access(BucketId(5))); // hit
        assert!(c.access(BucketId(5))); // hit
        assert!(!c.access(BucketId(6))); // miss
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.insertions, 2);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_does_not_perturb_lru_or_stats() {
        let mut c = BucketCache::new(2);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        // Probe 1 many times; it must stay LRU.
        for _ in 0..10 {
            assert!(c.contains(BucketId(1)));
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(1)));
    }

    #[test]
    fn reinsert_resident_only_touches() {
        let mut c = BucketCache::new(2);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        assert_eq!(c.insert(BucketId(1)), None); // touch, no insert
        assert_eq!(c.stats().insertions, 2);
        assert_eq!(c.insert(BucketId(3)), Some(BucketId(2)));
    }

    #[test]
    fn bypass_counts_miss_without_loading() {
        let mut c = BucketCache::new(2);
        c.record_bypass();
        assert_eq!(c.stats().misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut c = BucketCache::new(2);
        c.access(BucketId(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = BucketCache::new(3);
        for i in 0..100 {
            c.access(BucketId(i % 7));
            assert!(c.len() <= 3);
        }
        assert_eq!(c.stats().evictions, c.stats().insertions - 3);
    }

    #[test]
    fn lru_order_iterates_oldest_first() {
        let mut c = BucketCache::new(3);
        c.insert(BucketId(1));
        c.insert(BucketId(2));
        c.insert(BucketId(3));
        c.access(BucketId(1));
        let order: Vec<_> = c.resident_lru_order().collect();
        assert_eq!(order, vec![BucketId(2), BucketId(3), BucketId(1)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BucketCache::new(0);
    }
}
