//! The batch cost model: the paper's `Tb`/`Tm` constants plus indexed-join
//! probe costs, and the formulas the scheduler and executor share.

use crate::disk::DiskModel;
use crate::simtime::SimDuration;

/// Cost constants for evaluating one bucket batch.
///
/// The workload throughput metric (Eq. 1) and the simulator's executor both
/// consume this model, so scheduling decisions and accounted time can never
/// disagree about costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// `Tb`: time to read one bucket from disk (sequential scan).
    pub tb: SimDuration,
    /// `Tm`: time to cross-match a single workload object in memory.
    pub tm: SimDuration,
    /// Cost of one random index probe (per workload object in an indexed join).
    pub probe: SimDuration,
    /// Fixed per-batch overhead of opening an indexed plan (root/interior
    /// index pages, plan setup). Keeps tiny indexed batches from appearing
    /// free.
    pub index_overhead: SimDuration,
}

impl CostModel {
    /// The paper's empirical constants for 40 MB buckets of 10 000 objects:
    /// `Tb = 1.2 s`, `Tm = 0.13 ms` (Section 5), with probe costs derived
    /// from the default [`DiskModel`].
    pub fn paper() -> Self {
        let disk = DiskModel::paper_default();
        CostModel {
            tb: SimDuration::from_secs_f64(1.2),
            tm: SimDuration::from_millis_f64(0.13),
            probe: Self::probe_from_disk(&disk),
            index_overhead: SimDuration::from_millis(60),
        }
    }

    /// Derives all constants from disk geometry and a bucket size.
    ///
    /// `match_us` is the in-memory per-object match cost in microseconds
    /// (the paper's Tm = 130 µs covers the sort/merge share per object).
    pub fn from_disk(disk: &DiskModel, bucket_bytes: u64, match_us: u64) -> Self {
        CostModel {
            tb: disk.sequential_read(bucket_bytes),
            tm: SimDuration::from_micros(match_us),
            probe: Self::probe_from_disk(disk),
            index_overhead: SimDuration::from_millis(60),
        }
    }

    /// A cheap, deterministic model for unit tests: Tb=1 s, Tm=1 ms,
    /// probe=10 ms, overhead=0.
    pub fn test_simple() -> Self {
        CostModel {
            tb: SimDuration::from_secs(1),
            tm: SimDuration::from_millis(1),
            probe: SimDuration::from_millis(10),
            index_overhead: SimDuration::ZERO,
        }
    }

    fn probe_from_disk(disk: &DiskModel) -> SimDuration {
        // An index probe touches a leaf page at a random position; interior
        // pages are hot and accounted in `index_overhead`. Probe streams
        // parallelize across the striped array.
        disk.striped_page_read()
    }

    /// Cost of a sequential-scan batch: `φ·Tb + W·Tm` (Eq. 1's denominator).
    ///
    /// `cached` is true when the bucket is in the bucket cache (φ = 0).
    pub fn scan_batch(&self, workload_len: u64, cached: bool) -> SimDuration {
        let io = if cached { SimDuration::ZERO } else { self.tb };
        io + self.tm.times(workload_len)
    }

    /// Cost of an indexed batch: fixed overhead plus one probe and one match
    /// per workload object. Probes bypass the bucket cache (random pages are
    /// not bucket-resident), so there is no `cached` discount.
    pub fn indexed_batch(&self, workload_len: u64) -> SimDuration {
        self.index_overhead + (self.probe + self.tm).times(workload_len)
    }

    /// The workload-queue length at which an indexed join stops being
    /// cheaper than an uncached scan (the hybrid strategy's break-even,
    /// Figure 2: "roughly 3% of the size of the bucket").
    pub fn break_even_queue_len(&self) -> u64 {
        // overhead + w·(probe + tm) = tb + w·tm  ⇒  w = (tb − overhead)/probe
        let tb = self.tb.as_micros() as f64;
        let oh = self.index_overhead.as_micros() as f64;
        let probe = self.probe.as_micros() as f64;
        if probe <= 0.0 || oh >= tb {
            return 0;
        }
        ((tb - oh) / probe).floor() as u64
    }

    /// Speed-up of a (non-indexed) scan over an indexed join for a batch of
    /// `workload_len` objects — the y-axis of Figure 2. Values > 1 mean the
    /// scan wins.
    pub fn scan_speedup(&self, workload_len: u64) -> f64 {
        let scan = self.scan_batch(workload_len, false).as_micros() as f64;
        let indexed = self.indexed_batch(workload_len).as_micros() as f64;
        indexed / scan
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = CostModel::paper();
        assert_eq!(c.tb.as_secs_f64(), 1.2);
        assert_eq!(c.tm.as_micros(), 130);
    }

    #[test]
    fn scan_batch_formula() {
        let c = CostModel::test_simple();
        // Uncached: 1s + 100 * 1ms
        assert_eq!(c.scan_batch(100, false).as_millis_f64(), 1100.0);
        // Cached: only matching.
        assert_eq!(c.scan_batch(100, true).as_millis_f64(), 100.0);
        assert_eq!(c.scan_batch(0, true), SimDuration::ZERO);
    }

    #[test]
    fn indexed_batch_formula() {
        let c = CostModel::test_simple();
        // 100 * (10ms + 1ms) = 1.1s
        assert_eq!(c.indexed_batch(100).as_millis_f64(), 1100.0);
        assert_eq!(c.indexed_batch(0), SimDuration::ZERO);
    }

    #[test]
    fn break_even_near_three_percent_at_paper_scale() {
        let c = CostModel::paper();
        let w = c.break_even_queue_len();
        // 10 000 objects per bucket in the paper ⇒ ~3% ≈ 300 objects.
        // Our probe (~12.4ms) gives (1200-60)/12.4 ≈ 92... too *low* a
        // break-even would mean probes are too expensive; the model is
        // validated against the published 0.5%–10% plausible band.
        let ratio = w as f64 / 10_000.0;
        assert!(
            (0.005..0.10).contains(&ratio),
            "break-even ratio {ratio} implausible (w = {w})"
        );
    }

    #[test]
    fn indexed_wins_below_break_even_scan_wins_above() {
        let c = CostModel::paper();
        let w = c.break_even_queue_len();
        assert!(c.scan_speedup(w.saturating_sub(10).max(1)) < 1.0);
        assert!(c.scan_speedup(w + 10) > 1.0);
    }

    #[test]
    fn speedup_is_monotonic_in_queue_length() {
        let c = CostModel::paper();
        let mut last = 0.0;
        for w in [1u64, 10, 100, 1_000, 10_000] {
            let s = c.scan_speedup(w);
            assert!(s > last, "speedup must grow with contention");
            last = s;
        }
    }

    #[test]
    fn twenty_fold_gap_at_full_bucket() {
        // "we observe up to a twenty fold performance gap" — at W = bucket
        // size (10 000), the scan should win by an order of magnitude or two.
        let c = CostModel::paper();
        let s = c.scan_speedup(10_000);
        assert!((10.0..100.0).contains(&s), "full-bucket speedup {s}");
    }
}
