//! Bucket identity and extent metadata.
//!
//! A bucket is an equal-object-count slice of the HTM curve ("we partition
//! the sky into disjoint, equal-sized buckets in which each bucket covers a
//! set of triangles that are contiguous in the HTM range", Section 3.1).
//! The objects themselves live in `liferaft-catalog`; this crate only deals
//! in identity, extent, and size — all the storage layer needs for cost
//! accounting and caching.

use std::fmt;

use liferaft_htm::HtmRange;

/// Dense index of a bucket within a partition (0-based, in HTM-curve order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketId(pub u32);

impl BucketId {
    /// The bucket's position along the HTM curve (== its index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BucketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Metadata describing one bucket: its curve extent and physical size.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketMeta {
    /// Bucket identity (curve order).
    pub id: BucketId,
    /// The contiguous range of object-level HTM IDs this bucket owns.
    pub htm_range: HtmRange,
    /// Number of catalog objects stored in the bucket.
    pub object_count: u64,
    /// Bucket size on disk in bytes (drives the scan cost).
    pub bytes: u64,
}

impl BucketMeta {
    /// Fraction `w / object_count` used by the hybrid join strategy
    /// ("the size of the workload queue is roughly 3% of the size of the
    /// bucket", Section 3.4).
    pub fn queue_ratio(&self, queue_len: u64) -> f64 {
        if self.object_count == 0 {
            return f64::INFINITY;
        }
        queue_len as f64 / self.object_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_htm::HtmId;

    fn meta() -> BucketMeta {
        BucketMeta {
            id: BucketId(7),
            htm_range: HtmRange::new(
                HtmId::from_raw_unchecked(128),
                HtmId::from_raw_unchecked(131),
            ),
            object_count: 10_000,
            bytes: 40 * 1024 * 1024,
        }
    }

    #[test]
    fn id_display_and_index() {
        assert_eq!(BucketId(3).to_string(), "B3");
        assert_eq!(BucketId(3).index(), 3);
    }

    #[test]
    fn queue_ratio_basic() {
        let m = meta();
        assert_eq!(m.queue_ratio(300), 0.03);
        assert_eq!(m.queue_ratio(0), 0.0);
    }

    #[test]
    fn queue_ratio_of_empty_bucket_is_infinite() {
        let mut m = meta();
        m.object_count = 0;
        assert!(m.queue_ratio(1).is_infinite());
    }

    #[test]
    fn ordering_follows_curve_order() {
        assert!(BucketId(1) < BucketId(2));
    }
}
