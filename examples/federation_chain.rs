//! Federated cross-match: a serial chain of archives, each batching with
//! its own LifeRaft scheduler.
//!
//! SkyQuery ships intermediate join results from archive to archive
//! (Section 3); the paper evaluates one site and leaves multi-site
//! coordination as future work (Section 6). This example runs the full
//! chain: three synthetic archives (think 2MASS → SDSS → USNO-B) observing
//! the same sky at different depths, with every site scheduling
//! independently. It compares per-site and end-to-end behaviour of LifeRaft
//! against NoShare chains.
//!
//! Run with: `cargo run --release --example federation_chain`

use liferaft::prelude::*;
use liferaft::sim::run_chain;

const LEVEL: u8 = 8;

fn main() {
    // Three archives over one sky: same positions (the same universe!),
    // different bucket layouts — each site partitions independently.
    let sky = liferaft::catalog::generate::uniform_sky(30_000, LEVEL, 23);
    let twomass = MaterializedCatalog::build(&sky, LEVEL, 400, 4096);
    let sdss = MaterializedCatalog::build(&sky, LEVEL, 250, 4096);
    let usnob = MaterializedCatalog::build(&sky, LEVEL, 500, 4096);
    println!(
        "federation: twomass ({} buckets) → sdss ({} buckets) → usnob ({} buckets)",
        twomass.partition().num_buckets(),
        sdss.partition().num_buckets(),
        usnob.partition().num_buckets()
    );

    // Queries anchored on real objects so cross-matches survive the chain.
    let queries: Vec<CrossMatchQuery> = (0..40)
        .map(|i| {
            let objs = twomass.bucket_objects(BucketId((i % 6) as u32 * 10));
            let positions: Vec<_> = objs.iter().step_by(8).map(|o| o.pos).collect();
            CrossMatchQuery::from_positions(
                QueryId(i as u64),
                &positions,
                2e-4,
                LEVEL,
                Predicate::All,
            )
        })
        .collect();
    let trace = Trace::new(LEVEL, queries);
    let timed = trace.with_arrivals(poisson_arrivals(0.2, trace.len(), 31));
    let sites: Vec<&dyn Catalog> = vec![&twomass, &sdss, &usnob];

    let params = MetricParams::paper();
    let mut table = Table::new([
        "chain scheduler",
        "site",
        "tput (q/s)",
        "mean rt (s)",
        "bucket reads",
        "entered",
        "dropped",
    ]);

    for policy in ["LifeRaft(α=0)", "NoShare"] {
        let mut mk: Box<dyn FnMut(usize) -> Box<dyn Scheduler>> = if policy.starts_with("LifeRaft")
        {
            Box::new(move |_| Box::new(LifeRaftScheduler::greedy(params)))
        } else {
            Box::new(|_| Box::new(NoShareScheduler::new()))
        };
        let report = run_chain(&sites, &timed, mk.as_mut(), SimConfig::paper());
        for (i, site_report) in report.sites.iter().enumerate() {
            table.row([
                policy.to_string(),
                ["twomass", "sdss", "usnob"][i].to_string(),
                format!("{:.4}", site_report.throughput_qps),
                format!("{:.1}", site_report.mean_response_s()),
                site_report.io.bucket_reads.to_string(),
                report.entered[i].to_string(),
                report.dropped[i].to_string(),
            ]);
        }
        println!(
            "{policy}: {} of {} queries survived the chain; end-to-end mean {:.1}s, p90 {:.1}s",
            report.survivors(),
            timed.len(),
            report.end_to_end.mean(),
            report.end_to_end.percentile(90.0),
        );
    }
    println!("\n{}", table.render());
    println!(
        "Each site batches independently (Section 6); intermediate result lists grow or\n\
         shrink at each hop, so downstream sites see different contention than upstream."
    );
}
