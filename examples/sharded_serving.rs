//! Sharded serving: one archive, N scheduler shards, two executors.
//!
//! Partitions the bucket space across four shards (each with its own
//! workload table, 20-bucket cache, and greedy LifeRaft scheduler), routes
//! a hotspot workload through the front-end with per-shard backpressure,
//! and runs the same configuration through both executors — the
//! deterministic stepped virtual-time merge and one OS thread per shard —
//! proving they produce bit-identical results. Turns on epoch-boundary
//! rebalancing and prints every epoch's load sample and bucket migrations.
//! Then drives a parallel α sweep and a shard-count sweep over the same
//! pool.
//!
//! Run with: `cargo run --release --example sharded_serving`

use liferaft::prelude::*;
use liferaft::runtime::{alpha_sweep, shard_sweep};

fn main() {
    const LEVEL: u8 = 10;
    const BUCKETS: u32 = 512;

    // 1. A paper-shaped virtual catalog and a hotspot workload arriving at
    //    a rate that keeps queues deep.
    let catalog = VirtualCatalog::new(LEVEL, BUCKETS, 200, 4096, 7);
    let cfg = WorkloadConfig::paper_like(LEVEL, BUCKETS, 150, 99);
    let trace = TraceGenerator::new(cfg).generate();
    let timed = trace.with_arrivals(poisson_arrivals(1.0, trace.len(), 1));
    println!(
        "catalog: {BUCKETS} buckets at level {LEVEL}; workload: {} queries / {} objects\n",
        timed.len(),
        trace.total_objects(),
    );

    // 2. Four shards, contiguous placement, bounded per-shard ingress.
    let params = MetricParams::paper();
    let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    config.admission = AdmissionConfig::bounded(5_000);
    let runtime = ShardedRuntime::new(&catalog, config.clone());
    let mut mk =
        |_: usize| -> Box<dyn Scheduler + Send> { Box::new(LifeRaftScheduler::greedy(params)) };

    let stepped = runtime.run(&timed, &mut mk, ExecMode::Stepped);
    let threaded = runtime.run(&timed, &mut mk, ExecMode::Threaded);
    assert_eq!(
        stepped.global.outcomes, threaded.global.outcomes,
        "threaded execution must be bit-identical to the stepped merge"
    );
    assert_eq!(stepped.global.batches, threaded.global.batches);

    let mut shard_table = Table::new([
        "shard",
        "fragments",
        "batches",
        "bucket reads",
        "cache hit %",
        "makespan (s)",
        "deferred",
        "peak backlog",
    ]);
    for s in &stepped.shards {
        shard_table.row([
            s.shard.to_string(),
            s.report.queries.to_string(),
            s.report.batches.to_string(),
            s.report.io.bucket_reads.to_string(),
            format!("{:.0}", s.report.cache.hit_rate() * 100.0),
            format!("{:.0}", s.report.makespan_s),
            s.admission.deferred_fragments.to_string(),
            s.admission.peak_backlog.to_string(),
        ]);
    }
    println!("{}", shard_table.render());
    println!(
        "{} of {} queries crossed shards; imbalance {:.2}; stepped == threaded ✓\n{}\n",
        stepped.cross_shard_queries,
        stepped.global.queries,
        stepped.shard_imbalance(),
        stepped.global.summary_line(),
    );

    // 3. The same pool, elastic: every 30 virtual seconds a rebalance
    //    controller inspects per-shard backlog and migrates hot buckets
    //    from the most- to the least-loaded shard. Decisions are planned
    //    once in the stepped merge and replayed verbatim by the threaded
    //    executor, so the modes stay bit-identical with rebalancing on.
    let mut elastic_cfg = config;
    elastic_cfg.rebalance = RebalanceConfig::every(SimDuration::from_secs(30));
    elastic_cfg.rebalance.min_imbalance = 1.05;
    let elastic_rt = ShardedRuntime::new(&catalog, elastic_cfg);
    let elastic = elastic_rt.run(&timed, &mut mk, ExecMode::Stepped);
    let elastic_threaded = elastic_rt.run(&timed, &mut mk, ExecMode::Threaded);
    assert_eq!(
        elastic.global.outcomes, elastic_threaded.global.outcomes,
        "elastic threaded execution must replay the stepped decision log"
    );

    let log = elastic
        .rebalance
        .as_ref()
        .expect("elastic run records a log");
    let mut epoch_table = Table::new(["epoch", "at", "shard loads", "migrations"]);
    for rec in &log.records {
        let moves = if rec.moves.is_empty() {
            "—".to_string()
        } else {
            rec.moves
                .iter()
                .map(|m| format!("{}: {}→{} ({} entries)", m.bucket, m.from, m.to, m.entries))
                .collect::<Vec<_>>()
                .join(", ")
        };
        epoch_table.row([
            rec.epoch.to_string(),
            rec.at.to_string(),
            format!("{:?}", rec.loads),
            moves,
        ]);
    }
    println!("{}", epoch_table.render());
    println!(
        "elastic: {} migrations over {} epochs; makespan {:.0}s vs static {:.0}s; \
         stepped == threaded ✓\n",
        log.total_moves(),
        log.records.len(),
        elastic.global.makespan_s,
        stepped.global.makespan_s,
    );

    // 4. The overload front door under a flash crowd: the same pool fronted
    //    by a global admission controller that bounds in-flight work,
    //    classifies queries by routed size, and degrades in order — queue,
    //    shed batch work into backoff, reject. Decisions are planned once in
    //    the stepped merge and replayed verbatim by the threaded executor.
    let flash = build_scenario(
        ScenarioKind::FlashCrowd,
        &ScenarioScale {
            level: LEVEL,
            n_buckets: BUCKETS,
            n_queries: 120,
            seed: 2009,
        },
    );
    let mut door_cfg = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    door_cfg.front_door = FrontDoorConfig::bounded(2_000);
    door_cfg.front_door.interactive_max_assignments = 200;
    door_cfg.front_door.batch_min_assignments = 600;
    door_cfg.front_door.max_waiting_assignments = Some(6_000);
    let door_rt = ShardedRuntime::new(&catalog, door_cfg);
    let door_stepped = door_rt.run(&flash.trace, &mut mk, ExecMode::Stepped);
    let door_threaded = door_rt.run(&flash.trace, &mut mk, ExecMode::Threaded);
    assert_eq!(
        door_stepped.global.outcomes, door_threaded.global.outcomes,
        "front-door threaded execution must replay the stepped admission log"
    );
    let fd = door_stepped
        .front_door
        .as_ref()
        .expect("front-door run records a report");
    let mut class_table = Table::new([
        "class",
        "submitted",
        "admitted",
        "deferred",
        "shed events",
        "rejected",
        "max retries",
        "p90 ttfb (s)",
        "p90 rt (s)",
    ]);
    for class in QueryClass::ALL {
        let c = fd.class(class);
        class_table.row([
            class.label().to_string(),
            c.submitted.to_string(),
            c.admitted.to_string(),
            c.deferred.to_string(),
            c.shed_events.to_string(),
            c.rejected.to_string(),
            c.max_retries.to_string(),
            format!("{:.1}", c.ttfb.percentile(90.0)),
            format!("{:.1}", c.response.percentile(90.0)),
        ]);
    }
    println!("{}", class_table.render());
    println!(
        "flash crowd through the front door: {} completed + {} rejected = {} submitted; \
         {} shed events; stepped == threaded ✓\n",
        door_stepped.global.outcomes.len(),
        fd.rejected.len(),
        flash.trace.len(),
        fd.log.total_shed_events(),
    );

    // 5. The parallel sweep driver: α sweep (independent Simulation runs)
    //    and shard-count sweep (independent runtime runs), fanned across
    //    threads with results in input order.
    let alphas = [0.0, 0.5, 1.0];
    let alpha_points = alpha_sweep(&catalog, &timed, SimConfig::paper(), params, &alphas, 3);
    let counts = [1u32, 2, 4, 8];
    let shard_points = shard_sweep(
        &catalog,
        &timed,
        RuntimeConfig::contiguous(SimConfig::paper(), 1),
        &counts,
        ExecMode::Threaded,
        2,
        move |_| Box::new(LifeRaftScheduler::greedy(params)),
    );

    let mut sweep_table = Table::new(["sweep point", "throughput (q/s)", "mean rt (s)", "batches"]);
    for p in alpha_points.iter().chain(&shard_points) {
        sweep_table.row([
            p.label.clone(),
            format!("{:.4}", p.report.throughput_qps),
            format!("{:.1}", p.report.mean_response_s()),
            p.report.batches.to_string(),
        ]);
    }
    println!("{}", sweep_table.render());
    println!("Sweeps ran on a thread pool; ordering and results are thread-count independent.\n");

    // 6. The flight recorder: the elastic pool again with the JSONL sink
    //    on. Every shard records typed scheduler / batch / cache /
    //    completion events, the rebalance controller contributes migration
    //    events, and the merged stream comes out in canonical
    //    (time, shard, seq) order — byte-identical across both executors.
    //    Set LIFERAFT_TRACE_DIR to also write the stream as JSONL plus a
    //    Chrome/Perfetto trace document.
    let mut traced_cfg = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    traced_cfg.admission = AdmissionConfig::bounded(5_000);
    traced_cfg.rebalance = RebalanceConfig::every(SimDuration::from_secs(30));
    traced_cfg.rebalance.min_imbalance = 1.05;
    traced_cfg.telemetry = TelemetryConfig::jsonl().with_window(SimDuration::from_secs(20));
    let traced_rt = ShardedRuntime::new(&catalog, traced_cfg);
    let traced = traced_rt.run(&timed, &mut mk, ExecMode::Stepped);
    let traced_threaded = traced_rt.run(&timed, &mut mk, ExecMode::Threaded);
    let telemetry = traced.telemetry.as_ref().expect("telemetry is on");
    assert_eq!(
        telemetry.to_jsonl(),
        traced_threaded.telemetry.as_ref().unwrap().to_jsonl(),
        "the recorded stream must be byte-identical across executors"
    );
    println!("{}", telemetry.summary_table());
    println!("{}", telemetry.ascii_timeline());
    println!(
        "flight recorder: {} events across {} shards; stream bytes identical across executors ✓",
        telemetry.events.len(),
        telemetry.n_shards,
    );
    if let Ok(dir) = std::env::var("LIFERAFT_TRACE_DIR") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create trace dir");
        let jsonl = dir.join("sharded_serving.jsonl");
        let perfetto = dir.join("sharded_serving.perfetto.json");
        std::fs::write(&jsonl, telemetry.to_jsonl()).expect("write jsonl");
        std::fs::write(&perfetto, telemetry.to_chrome_trace()).expect("write perfetto trace");
        println!(
            "wrote {} and {} (open the latter at https://ui.perfetto.dev)",
            jsonl.display(),
            perfetto.display()
        );
    }
}
