//! Quickstart: the end-to-end LifeRaft pipeline on a small sky.
//!
//! Builds a catalog, partitions it into equal-sized HTM buckets, generates a
//! hotspot workload, and compares the LifeRaft scheduler against the
//! NoShare and round-robin baselines — with *real* cross-match joins so the
//! match counts prove all schedulers compute the same answers.
//!
//! Run with: `cargo run --release --example quickstart`

use liferaft::prelude::*;

fn main() {
    const LEVEL: u8 = 8;

    // 1. A synthetic sky of 20 000 objects, partitioned into buckets of 200
    //    objects (the paper's layout, scaled down).
    let sky = liferaft::catalog::generate::uniform_sky(20_000, LEVEL, 42);
    let catalog = MaterializedCatalog::build(&sky, LEVEL, 200, 4096);
    let n_buckets = catalog.partition().num_buckets();
    println!(
        "catalog: {} objects in {} buckets of 200 (HTM level {LEVEL})",
        sky.len(),
        n_buckets
    );

    // 2. A 60-query workload with hotspot skew, arriving at 0.5 queries/s.
    let cfg = WorkloadConfig::paper_like(LEVEL, n_buckets as u32, 60, 7);
    let trace = TraceGenerator::new(cfg).generate();
    let stats = WorkloadStats::analyze(&trace, catalog.partition());
    println!(
        "workload: {} queries, {} objects, top-10 buckets touched by {:.0}% of queries",
        trace.len(),
        trace.total_objects(),
        stats.top_k_query_coverage(10) * 100.0
    );
    let timed = trace.with_arrivals(poisson_arrivals(0.5, trace.len(), 1));

    // 3. Replay under each scheduler, executing the joins for real.
    let sim = Simulation::new(&catalog, SimConfig::with_real_joins());
    let params = MetricParams::paper();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(NoShareScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(LifeRaftScheduler::age_based(params)), // α = 1
        Box::new(LifeRaftScheduler::greedy(params)),    // α = 0
    ];

    let mut table = Table::new([
        "scheduler",
        "throughput (q/s)",
        "mean rt (s)",
        "bucket reads",
        "mean batch",
        "matches",
    ]);
    for s in &mut schedulers {
        let r = sim.run(&timed, s.as_mut());
        table.row([
            r.scheduler.clone(),
            format!("{:.4}", r.throughput_qps),
            format!("{:.1}", r.mean_response_s()),
            r.io.bucket_reads.to_string(),
            format!("{:.1}", r.mean_batch_size()),
            r.total_matches.to_string(),
        ]);
    }
    println!("\n{}", table.render());
    println!("All schedulers report identical `matches` — only ordering and I/O differ.");
}
