//! Starvation study: short interactive queries sharing an archive with
//! long-running batch scans.
//!
//! SkyQuery's motivating pathology (Section 1): "any scheduler that sends
//! queries to the query processor in order will result in the starvation of
//! short-lived queries that queue awaiting the completion of long-running
//! queries" — while a purely greedy batcher starves whichever queries touch
//! unpopular data. This example builds an adversarial mix (a stream of tiny
//! interactive probes + heavyweight sky sweeps) and shows how the age bias α
//! moves the pain between the two populations.
//!
//! Run with: `cargo run --release --example interactive_vs_batch`

use liferaft::metrics::Summary;
use liferaft::prelude::*;

const LEVEL: u8 = 8;

fn main() {
    let sky = liferaft::catalog::generate::uniform_sky(40_000, LEVEL, 3);
    let catalog = MaterializedCatalog::build(&sky, LEVEL, 400, 4096);
    let n_buckets = catalog.partition().num_buckets() as u32;

    // Interactive probes: 1–4 objects in one tiny region (sub-second work).
    // Batch sweeps: hundreds of objects over wide regions (minutes of work).
    let mut interactive_cfg = WorkloadConfig::paper_like(LEVEL, n_buckets, 80, 11);
    interactive_cfg.size_small = (1, 4);
    interactive_cfg.size_large = (1, 4);
    interactive_cfg.full_sky_fraction = 0.0;
    let mut batch_cfg = WorkloadConfig::paper_like(LEVEL, n_buckets, 20, 12);
    batch_cfg.size_small = (200, 400);
    batch_cfg.size_large = (400, 800);
    batch_cfg.full_sky_fraction = 0.3;

    // Interleave: batch queries first (they hog the server), interactive
    // queries trickle in behind them.
    let interactive = TraceGenerator::new(interactive_cfg).generate();
    let batch = TraceGenerator::new(batch_cfg).generate();
    let mut queries = Vec::new();
    let mut arrivals = Vec::new();
    let batch_arrivals = poisson_arrivals(0.05, batch.len(), 21);
    let inter_arrivals = poisson_arrivals(0.2, interactive.len(), 22);
    let mut merged: Vec<(SimTime, CrossMatchQuery, bool)> = Vec::new();
    for (t, q) in batch_arrivals.iter().zip(batch.queries()) {
        merged.push((*t, q.clone(), true));
    }
    for (t, q) in inter_arrivals.iter().zip(interactive.queries()) {
        merged.push((*t, q.clone(), false));
    }
    merged.sort_by_key(|(t, _, _)| *t);
    let mut is_batch = Vec::new();
    for (i, (t, mut q, batchy)) in merged.into_iter().enumerate() {
        q.id = QueryId(i as u64); // re-id in arrival order
        arrivals.push(t);
        queries.push(q);
        is_batch.push(batchy);
    }
    let trace = Trace::new(LEVEL, queries);
    let timed = trace.with_arrivals(arrivals);

    println!(
        "mixed workload: {} interactive probes + {} batch sweeps\n",
        interactive.len(),
        batch.len()
    );

    let sim = Simulation::new(&catalog, SimConfig::paper());
    let params = MetricParams::paper();
    let mut table = Table::new([
        "scheduler",
        "interactive mean rt (s)",
        "interactive p90 (s)",
        "batch mean rt (s)",
        "tput (q/s)",
        "max wait (s)",
    ]);

    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut s = LifeRaftScheduler::new(params, AgingMode::Normalized, alpha);
        let r = sim.run(&timed, &mut s);
        let (mut inter_rt, mut batch_rt) = (Vec::new(), Vec::new());
        for o in &r.outcomes {
            let rt = o.response_time().as_secs_f64();
            if is_batch[o.query.0 as usize] {
                batch_rt.push(rt);
            } else {
                inter_rt.push(rt);
            }
        }
        let inter = Summary::from_samples(inter_rt);
        let batch = Summary::from_samples(batch_rt);
        table.row([
            r.scheduler.clone(),
            format!("{:.1}", inter.mean()),
            format!("{:.1}", inter.percentile(90.0)),
            format!("{:.1}", batch.mean()),
            format!("{:.4}", r.throughput_qps),
            format!("{:.1}", r.max_wait_ms / 1000.0),
        ]);
    }
    // NoShare for contrast: strict arrival order means interactive queries
    // queue behind every earlier sweep.
    let r = sim.run(&timed, &mut NoShareScheduler::new());
    let inter = Summary::from_samples(
        r.outcomes
            .iter()
            .filter(|o| !is_batch[o.query.0 as usize])
            .map(|o| o.response_time().as_secs_f64())
            .collect(),
    );
    let batch_s = Summary::from_samples(
        r.outcomes
            .iter()
            .filter(|o| is_batch[o.query.0 as usize])
            .map(|o| o.response_time().as_secs_f64())
            .collect(),
    );
    table.row([
        r.scheduler.clone(),
        format!("{:.1}", inter.mean()),
        format!("{:.1}", inter.percentile(90.0)),
        format!("{:.1}", batch_s.mean()),
        format!("{:.4}", r.throughput_qps),
        format!("{:.1}", r.max_wait_ms / 1000.0),
    ]);

    println!("{}", table.render());
    println!(
        "Reading the table: α=0 maximizes throughput but lets unpopular-data queries wait;\n\
         α=1 serves arrival order; intermediate α (the paper's operating point) balances both."
    );
}
