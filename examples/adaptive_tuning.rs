//! Adaptive α: calibrate trade-off curves offline, then let the controller
//! retune the scheduler as a bursty workload swings between saturations.
//!
//! Reproduces the Section 4 workflow end to end:
//! 1. calibrate throughput-vs-response curves at several saturations
//!    (Figure 4's data),
//! 2. pick α per saturation under a 20% throughput-degradation tolerance,
//! 3. replay a bursty trace with the [`AdaptiveScheduler`] and compare it
//!    against every fixed-α policy.
//!
//! Run with: `cargo run --release --example adaptive_tuning`

use liferaft::prelude::*;

const LEVEL: u8 = 8;

fn main() {
    let sky = liferaft::catalog::generate::uniform_sky(30_000, LEVEL, 5);
    let catalog = MaterializedCatalog::build(&sky, LEVEL, 300, 4096);
    let n_buckets = catalog.partition().num_buckets() as u32;

    let mut cfg = WorkloadConfig::paper_like(LEVEL, n_buckets, 150, 13);
    cfg.size_small = (10, 40);
    cfg.size_large = (60, 200);
    let trace = TraceGenerator::new(cfg).generate();

    // --- 1. Offline calibration -----------------------------------------
    let saturations = [0.05, 0.1, 0.25, 0.5];
    let alphas = [0.0, 0.25, 0.5, 0.75, 1.0];
    println!(
        "calibrating {}x{} (saturation x alpha) grid...",
        saturations.len(),
        alphas.len()
    );
    let (table, reports) = calibrate_tradeoff_table(
        &catalog,
        &trace,
        &saturations,
        &alphas,
        SimConfig::paper(),
        99,
    );

    let mut cal = Table::new(["saturation (q/s)", "alpha", "tput (q/s)", "mean rt (s)"]);
    for (sat, runs) in &reports {
        for r in runs {
            cal.row([
                format!("{sat}"),
                r.scheduler.clone(),
                format!("{:.4}", r.throughput_qps),
                format!("{:.1}", r.mean_response_s()),
            ]);
        }
    }
    println!("\n{}", cal.render());

    // --- 2. Tolerance-threshold selection (Section 4) -------------------
    const TOLERANCE: f64 = 0.2;
    let mut sel = Table::new(["saturation (q/s)", "selected alpha (20% tolerance)"]);
    for &sat in &saturations {
        sel.row([
            format!("{sat}"),
            format!("{}", table.select_alpha(sat, TOLERANCE)),
        ]);
    }
    println!("{}", sel.render());

    // --- 3. Bursty replay with the adaptive controller ------------------
    let burst = bursty_arrivals(0.05, 0.5, SimDuration::from_secs(600), trace.len(), 4);
    let timed = trace.with_arrivals(burst);
    let sim = Simulation::new(&catalog, SimConfig::paper());
    let params = MetricParams::paper();

    let controller = AlphaController::new(
        table,
        TOLERANCE,
        SimDuration::from_secs(120), // saturation window
        SimDuration::from_secs(60),  // retune cadence
        0.5,
    );
    let mut adaptive = AdaptiveScheduler::new(
        LifeRaftScheduler::new(params, AgingMode::Normalized, 0.5),
        controller,
    );

    let mut replay = Table::new(["scheduler", "tput (q/s)", "mean rt (s)", "p90 rt (s)"]);
    let r = sim.run(&timed, &mut adaptive);
    replay.row([
        "AdaptiveLifeRaft".to_string(),
        format!("{:.4}", r.throughput_qps),
        format!("{:.1}", r.mean_response_s()),
        format!("{:.1}", r.response.percentile(90.0)),
    ]);
    for alpha in alphas {
        let mut s = LifeRaftScheduler::new(params, AgingMode::Normalized, alpha);
        let r = sim.run(&timed, &mut s);
        replay.row([
            r.scheduler.clone(),
            format!("{:.4}", r.throughput_qps),
            format!("{:.1}", r.mean_response_s()),
            format!("{:.1}", r.response.percentile(90.0)),
        ]);
    }
    println!("bursty replay (alternating 0.05 / 0.5 q/s phases):\n");
    println!("{}", replay.render());
    println!(
        "The adaptive policy should track the better fixed-α at each phase:\n\
         high α during lulls (low response time costs little throughput),\n\
         low α during bursts (throughput is worth defending)."
    );
}
