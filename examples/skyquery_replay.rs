//! SkyQuery trace replay: the paper's headline experiment (Figure 7) at a
//! configurable scale.
//!
//! Replays a 2 000-query (by default) synthetic SkyQuery workload against a
//! paper-scale virtual catalog under every scheduler the paper evaluates:
//! NoShare, LifeRaft at α ∈ {1.0, 0.75, 0.5, 0.25, 0.0}, and RR. Prints
//! throughput, response time (normalized to NoShare, as in Figure 7b),
//! coefficient of variation, and cache behaviour.
//!
//! Run with:
//!   cargo run --release --example skyquery_replay
//!   cargo run --release --example skyquery_replay -- <queries> <buckets> <rate_qps>

use liferaft::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_queries: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let n_buckets: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);

    const LEVEL: u8 = 14; // the paper's object level
    println!(
        "replaying {n_queries} queries over {n_buckets} buckets of 10,000 objects at {rate} q/s\n"
    );

    // The paper's storage shape: 40 MB buckets of 10 000 × 4 KB objects.
    let catalog = VirtualCatalog::new(LEVEL, n_buckets, 10_000, 4096, 2009);
    let cfg = WorkloadConfig::paper_like(LEVEL, n_buckets, n_queries, 1);
    let trace = TraceGenerator::new(cfg).generate();

    let stats = WorkloadStats::analyze(&trace, catalog.partition());
    println!(
        "workload shape: top-10 buckets touched by {:.0}% of queries; \
         top 2% of buckets carry {:.0}% of objects; {:.1} buckets/query",
        stats.top_k_query_coverage(10) * 100.0,
        stats.workload_share_of_top_buckets(0.02) * 100.0,
        stats.mean_buckets_per_query(),
    );

    let timed = trace.with_arrivals(poisson_arrivals(rate, trace.len(), 7));
    let sim = Simulation::new(&catalog, SimConfig::paper());
    let params = MetricParams::paper();

    // The Figure 7 scheduler lineup.
    let mut lineup: Vec<Box<dyn Scheduler>> = vec![Box::new(NoShareScheduler::new())];
    for alpha in [1.0, 0.75, 0.5, 0.25, 0.0] {
        lineup.push(Box::new(LifeRaftScheduler::new(
            params,
            AgingMode::Normalized,
            alpha,
        )));
    }
    lineup.push(Box::new(RoundRobinScheduler::new()));

    let mut reports = Vec::new();
    for s in &mut lineup {
        let r = sim.run(&timed, s.as_mut());
        println!("{}", r.summary_line());
        reports.push(r);
    }

    let noshare_rt = reports[0].mean_response_s();
    let mut table = Table::new([
        "scheduler",
        "tput (q/s)",
        "rt/NoShare",
        "CoV",
        "cache-hit %",
        "bucket reads",
    ]);
    for r in &reports {
        table.row([
            r.scheduler.clone(),
            format!("{:.4}", r.throughput_qps),
            format!("{:.2}", r.mean_response_s() / noshare_rt),
            format!("{:.2}", r.response_cov()),
            format!("{:.1}", r.cache_service_fraction() * 100.0),
            r.io.bucket_reads.to_string(),
        ]);
    }
    println!("\n{}", table.render());

    let greedy = &reports[5];
    println!(
        "speed-up of LifeRaft(α=0) over NoShare: {:.2}x (paper: >2x)",
        greedy.throughput_qps / reports[0].throughput_qps
    );
}
