//! Smoke test mirroring the crate-level doc example in `src/lib.rs`.
//!
//! The quickstart — build a catalog, synthesize a trace, run LifeRaft
//! against NoShare — already executes as a doc test under `cargo test`, but
//! doc tests are easy to silently lose (a fenced block marked `ignore`, a
//! feature gate, a harness change). This integration test pins the same
//! pipeline as a plain `#[test]` and asserts the paper's headline property:
//! data-driven batching beats in-order evaluation on throughput.

use liferaft::prelude::*;

/// Same scale and seeds as the `src/lib.rs` quickstart.
#[test]
fn quickstart_pipeline_runs_and_liferaft_beats_noshare() {
    let sky = liferaft::catalog::generate::uniform_sky(5_000, 8, 42);
    let catalog = MaterializedCatalog::build(&sky, 8, 100, 4096);

    let cfg = WorkloadConfig::paper_like(8, catalog.partition().num_buckets() as u32, 40, 7);
    let trace = TraceGenerator::new(cfg).generate();
    let timed = trace.with_arrivals(poisson_arrivals(0.5, trace.len(), 1));

    let sim = Simulation::new(&catalog, SimConfig::paper());
    let greedy = sim.run(
        &timed,
        &mut LifeRaftScheduler::greedy(MetricParams::paper()),
    );
    let noshare = sim.run(&timed, &mut NoShareScheduler::new());

    assert!(
        greedy.throughput_qps >= noshare.throughput_qps,
        "LifeRaft(α=0) throughput {} fell below NoShare {}",
        greedy.throughput_qps,
        noshare.throughput_qps
    );
    // Both schedulers must service every query in the trace.
    assert_eq!(greedy.queries, trace.len());
    assert_eq!(noshare.queries, trace.len());
}

/// The doc example is only trustworthy if `cargo test` actually executes it:
/// assert the quickstart block in `src/lib.rs` is a plain fenced Rust block,
/// not `ignore`d or `no_run`.
#[test]
fn quickstart_doc_example_is_a_live_doc_test() {
    let lib = include_str!("../src/lib.rs");
    let quickstart = lib
        .split("# Quickstart")
        .nth(1)
        .expect("src/lib.rs keeps a Quickstart section");
    let fence = quickstart
        .lines()
        .find(|l| l.trim_start_matches("//!").trim().starts_with("```"))
        .expect("Quickstart section contains a fenced code block");
    let info = fence
        .trim_start_matches("//!")
        .trim()
        .trim_start_matches("```");
    assert!(
        info.is_empty() || info == "rust",
        "quickstart fence `{info}` would not run under cargo test"
    );
}
