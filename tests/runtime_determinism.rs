//! Sharded-runtime determinism suite.
//!
//! Four pins, all against the shared fixture:
//!
//! 1. A **single-shard** runtime (stepped *and* threaded) reproduces the
//!    recorded single-engine goldens bit-for-bit — the runtime is a strict
//!    generalization of `Simulation`.
//! 2. **Threaded == stepped**, bit-for-bit, at 2/4/8 shards (contiguous and
//!    hashed placement) for all six schedulers — parallelism may only buy
//!    wall-clock time, never change an answer.
//! 3. **Elastic runs keep both guarantees**: with epoch rebalancing enabled
//!    the threaded replay matches the stepped plan bit-for-bit at 2/4/8
//!    shards, a never-triggering policy is behaviour-neutral against the
//!    static map, and a single elastic shard reproduces the goldens.
//! 4. The **sweep driver** returns identical results at any thread count.

mod common;

use common::{fingerprint, fixture, goldens, scheduler_factories};
use liferaft::prelude::*;
use liferaft::runtime::{alpha_sweep, shard_sweep};

#[test]
fn single_shard_runtime_reproduces_the_recorded_goldens() {
    let (catalog, timed) = fixture();
    let rt = ShardedRuntime::new(&catalog, RuntimeConfig::single(SimConfig::paper()));
    for ((label, mk), (_, golden)) in scheduler_factories().into_iter().zip(goldens()) {
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = rt.run(&timed, &mut |_| mk(), mode);
            assert_eq!(
                fingerprint(&report.global).as_str(),
                golden,
                "{label} via {mode:?}: single-shard runtime diverged from the simulation golden"
            );
            assert_eq!(report.cross_shard_queries, 0);
        }
    }
}

#[test]
fn threaded_is_bit_identical_to_stepped_across_shard_counts() {
    let (catalog, timed) = fixture();
    for n_shards in [2u32, 4, 8] {
        for assignment in [
            ShardAssignment::Contiguous,
            ShardAssignment::Hashed { seed: 0xC1D2 },
        ] {
            let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
            config.assignment = assignment;
            let rt = ShardedRuntime::new(&catalog, config);
            for (label, mk) in scheduler_factories() {
                let stepped = rt.run(&timed, &mut |_| mk(), ExecMode::Stepped);
                let threaded = rt.run(&timed, &mut |_| mk(), ExecMode::Threaded);
                let ctx = format!("{label} @ {n_shards} shards ({assignment:?})");
                assert_eq!(
                    fingerprint(&stepped.global),
                    fingerprint(&threaded.global),
                    "{ctx}: global reports diverged"
                );
                assert_eq!(
                    stepped.shards.len(),
                    n_shards as usize,
                    "{ctx}: shard count"
                );
                for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
                    assert_eq!(
                        fingerprint(&a.report),
                        fingerprint(&b.report),
                        "{ctx}: shard {} diverged",
                        a.shard
                    );
                    assert_eq!(a.admission, b.admission, "{ctx}: admission stats");
                }
                // The sharded pool conserves work: fragment-level servicing
                // sums to the single-engine total.
                assert_eq!(
                    stepped.global.serviced_entries, 59_935,
                    "{ctx}: serviced entries"
                );
                assert_eq!(stepped.global.outcomes.len(), timed.len(), "{ctx}");
            }
        }
    }
}

#[test]
fn elastic_rebalancing_keeps_the_determinism_contract() {
    let (catalog, timed) = fixture();
    // 0.5 q/s over 120 queries ≈ 240 virtual seconds; a 30 s epoch gives
    // ~8 rebalance opportunities.
    let mut rebalance = RebalanceConfig::every(SimDuration::from_secs(30));
    rebalance.min_imbalance = 1.05;
    for n_shards in [2u32, 4, 8] {
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        config.rebalance = rebalance;
        let rt = ShardedRuntime::new(&catalog, config);
        for (label, mk) in scheduler_factories() {
            let stepped = rt.run(&timed, &mut |_| mk(), ExecMode::Stepped);
            let threaded = rt.run(&timed, &mut |_| mk(), ExecMode::Threaded);
            let ctx = format!("{label} @ {n_shards} elastic shards");
            assert_eq!(
                fingerprint(&stepped.global),
                fingerprint(&threaded.global),
                "{ctx}: global reports diverged"
            );
            for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
                assert_eq!(
                    fingerprint(&a.report),
                    fingerprint(&b.report),
                    "{ctx}: shard {} diverged",
                    a.shard
                );
            }
            assert_eq!(
                stepped.rebalance, threaded.rebalance,
                "{ctx}: decision logs diverged"
            );
            // Migration moves work between shards but never loses or
            // duplicates it.
            assert_eq!(
                stepped.global.serviced_entries, 59_935,
                "{ctx}: serviced entries"
            );
            assert_eq!(stepped.global.outcomes.len(), timed.len(), "{ctx}");
        }
    }

    // The contiguous map concentrates this trace enough that the default
    // trigger actually fires somewhere across the sweep above; pin that the
    // suite exercises real migrations rather than vacuous no-op epochs.
    let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    config.rebalance = rebalance;
    let rt = ShardedRuntime::new(&catalog, config.clone());
    let greedy = scheduler_factories()[2].1;
    let run = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
    let log = run.rebalance.expect("elastic run records a log");
    assert!(
        log.total_moves() > 0,
        "fixture must trigger at least one migration at 4 shards"
    );

    // A never-triggering elastic policy is behaviour-neutral: bit-identical
    // to the static shard map, epoch records and all-zero move log included.
    let mut never = config.clone();
    never.rebalance.min_imbalance = 1e12;
    let rt_never = ShardedRuntime::new(&catalog, never);
    let mut static_cfg = config;
    static_cfg.rebalance = RebalanceConfig::disabled();
    let rt_static = ShardedRuntime::new(&catalog, static_cfg);
    for mode in [ExecMode::Stepped, ExecMode::Threaded] {
        let neutral = rt_never.run(&timed, &mut |_| greedy(), mode);
        let static_run = rt_static.run(&timed, &mut |_| greedy(), mode);
        assert_eq!(
            fingerprint(&neutral.global),
            fingerprint(&static_run.global),
            "{mode:?}: never-triggering elastic diverged from the static map"
        );
        assert_eq!(
            neutral.rebalance.as_ref().map(RebalanceLog::total_moves),
            Some(0)
        );
        assert!(static_run.rebalance.is_none());
    }

    // One elastic shard has no peer to shed load to: the recorded
    // single-engine goldens still hold verbatim.
    let mut single = RuntimeConfig::single(SimConfig::paper());
    single.rebalance = rebalance;
    let rt_single = ShardedRuntime::new(&catalog, single);
    for ((label, mk), (_, golden)) in scheduler_factories().into_iter().zip(goldens()) {
        let report = rt_single.run(&timed, &mut |_| mk(), ExecMode::Stepped);
        assert_eq!(
            fingerprint(&report.global).as_str(),
            golden,
            "{label}: single elastic shard diverged from the simulation golden"
        );
    }
}

#[test]
fn sweep_driver_results_are_independent_of_thread_count() {
    let (catalog, timed) = fixture();
    let params = MetricParams::paper();
    let alphas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let serial = alpha_sweep(&catalog, &timed, SimConfig::paper(), params, &alphas, 1);
    let fanned = alpha_sweep(&catalog, &timed, SimConfig::paper(), params, &alphas, 4);
    assert_eq!(serial.len(), fanned.len());
    for (a, b) in serial.iter().zip(&fanned) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            fingerprint(&a.report),
            fingerprint(&b.report),
            "α sweep point {} changed with thread count",
            a.label
        );
    }

    let counts = [1u32, 2, 4];
    let base = RuntimeConfig::single(SimConfig::paper());
    let mk = || -> Box<dyn Scheduler + Send> { Box::new(LifeRaftScheduler::greedy(params)) };
    let serial = shard_sweep(
        &catalog,
        &timed,
        base.clone(),
        &counts,
        ExecMode::Stepped,
        1,
        |_| mk(),
    );
    let fanned = shard_sweep(
        &catalog,
        &timed,
        base,
        &counts,
        ExecMode::Threaded,
        3,
        |_| mk(),
    );
    for (a, b) in serial.iter().zip(&fanned) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            fingerprint(&a.report),
            fingerprint(&b.report),
            "shard sweep point {} changed with thread count / exec mode",
            a.label
        );
    }
    // The 1-shard sweep point is the simulation golden once more.
    assert_eq!(fingerprint(&serial[0].report), common::GOLDEN_GREEDY);
}
