//! Golden determinism test: the scheduler decision path is a pure
//! mechanical-sympathy surface, so `RunReport` output for a fixed trace must
//! be *bit-identical* across refactors. The expected fingerprints (in
//! `common`) were recorded from the pre-incremental (rebuild-every-decision)
//! engine; any drift means a behaviour change snuck into the decision path.

mod common;

use common::{fingerprint, fixture, goldens, scheduler_factories};
use liferaft::prelude::*;

#[test]
fn run_reports_are_bit_identical_to_the_recorded_goldens() {
    let (catalog, timed) = fixture();
    let sim = Simulation::new(&catalog, SimConfig::paper());

    for ((label, mk), (glabel, golden)) in scheduler_factories().into_iter().zip(goldens()) {
        assert_eq!(label, glabel, "factory and golden tables out of sync");
        let mut scheduler = mk();
        let report = sim.run(&timed, scheduler.as_mut());
        let fp = fingerprint(&report);
        assert_eq!(
            fp.as_str(),
            golden,
            "{}: decision path diverged from the recorded golden",
            report.scheduler
        );
    }
}
