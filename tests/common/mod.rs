//! Shared fixture + fingerprint machinery for the determinism test suites.
//!
//! `golden_determinism.rs` pins the single-engine `Simulation` against the
//! recorded fingerprints below; `runtime_determinism.rs` pins the sharded
//! runtime against the *same* fingerprints (1 shard) and against itself
//! (stepped vs threaded at 2/4/8 shards). Keeping the fixture, the
//! fingerprint, and the goldens in one module guarantees all suites talk
//! about the same bytes.

#![allow(dead_code)] // each test binary uses a subset of this module

use liferaft::core::{adaptive::TradeoffPoint, TradeoffCurve};
use liferaft::prelude::*;

/// FNV-1a over a byte stream; stable across platforms and Rust releases.
pub struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// A compact, exact fingerprint of everything the decision path influences:
/// batch counts, I/O accounting, cache behaviour, the starvation monitor,
/// and the full per-query completion sequence (order included).
pub fn fingerprint(r: &RunReport) -> String {
    let mut h = Fnv::new();
    for o in &r.outcomes {
        h.u64(o.query.0);
        h.u64(o.arrival.as_micros());
        h.u64(o.completion.as_micros());
        h.u64(o.assignments);
    }
    format!(
        "b={} sb={} ib={} se={} cse={} reads={} probes={} hits={} miss={} ev={} mk={:016x} mw={:016x} oc={:016x}",
        r.batches,
        r.scan_batches,
        r.indexed_batches,
        r.serviced_entries,
        r.cache_serviced_entries,
        r.io.bucket_reads,
        r.io.index_probes,
        r.cache.hits,
        r.cache.misses,
        r.cache.evictions,
        r.makespan_s.to_bits(),
        r.max_wait_ms.to_bits(),
        h.0,
    )
}

/// The fixed catalog + trace every determinism suite replays.
pub fn fixture() -> (VirtualCatalog, TimedTrace) {
    const LEVEL: u8 = 10;
    const BUCKETS: u32 = 512;
    let catalog = VirtualCatalog::new(LEVEL, BUCKETS, 200, 4096, 7);
    let cfg = WorkloadConfig::paper_like(LEVEL, BUCKETS, 120, 99);
    let trace = TraceGenerator::new(cfg).generate();
    let arrivals = poisson_arrivals(0.5, trace.len(), 1);
    let timed = trace.with_arrivals(arrivals);
    (catalog, timed)
}

/// The adaptive-α scheduler the suites pin (fixed trade-off table).
pub fn adaptive() -> AdaptiveScheduler {
    let pt = |alpha, tput, resp| TradeoffPoint {
        alpha,
        throughput_qps: tput,
        mean_response_s: resp,
    };
    let table = TradeoffTable::new(vec![
        TradeoffCurve::new(
            0.1,
            vec![
                pt(0.0, 0.115, 300.0),
                pt(0.5, 0.110, 180.0),
                pt(1.0, 0.107, 138.0),
            ],
        ),
        TradeoffCurve::new(
            0.5,
            vec![
                pt(0.0, 0.40, 420.0),
                pt(0.25, 0.32, 340.0),
                pt(1.0, 0.14, 290.0),
            ],
        ),
    ]);
    let controller = AlphaController::new(
        table,
        0.20,
        SimDuration::from_secs(120),
        SimDuration::from_secs(30),
        0.5,
    );
    AdaptiveScheduler::new(
        LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, 0.5),
        controller,
    )
}

/// A nullary factory producing a fresh boxed scheduler per call.
pub type SchedulerFactory = fn() -> Box<dyn Scheduler + Send>;

/// The six pinned policies, as boxed factories usable by both the serial
/// simulation and the sharded runtime (every shard gets a fresh instance).
pub fn scheduler_factories() -> Vec<(&'static str, SchedulerFactory)> {
    vec![
        ("NoShare", || Box::new(NoShareScheduler::new())),
        ("RR", || Box::new(RoundRobinScheduler::new())),
        ("greedy", || {
            Box::new(LifeRaftScheduler::greedy(MetricParams::paper()))
        }),
        ("aged", || {
            Box::new(LifeRaftScheduler::age_based(MetricParams::paper()))
        }),
        ("alpha05", || {
            Box::new(LifeRaftScheduler::new(
                MetricParams::paper(),
                AgingMode::Normalized,
                0.5,
            ))
        }),
        ("adaptive", || Box::new(adaptive())),
    ]
}

// Recorded with: cargo test --test golden_determinism -- --nocapture (with
// the asserts relaxed to prints) on the pre-refactor engine; see CHANGES.md.
pub const GOLDEN_NOSHARE: &str = "b=390 sb=390 ib=0 se=59935 cse=0 reads=390 probes=0 hits=0 miss=0 ev=0 mk=407dc358201cd5fa mw=410e70b0645a1cac oc=890ec13a37c47be1";
pub const GOLDEN_RR: &str = "b=261 sb=234 ib=27 se=59935 cse=6870 reads=191 probes=81 hits=43 miss=191 ev=171 mk=406f71906cca2db6 mw=40ebbc9d89374bc7 oc=ca95e7f81b4cd249";
pub const GOLDEN_GREEDY: &str = "b=357 sb=333 ib=24 se=59935 cse=25436 reads=174 probes=75 hits=159 miss=174 ev=154 mk=406db495ebfa8f7e mw=40f9c19bbe76c8b4 oc=8c0672e318cae073";
pub const GOLDEN_AGED: &str = "b=263 sb=235 ib=28 se=59935 cse=10018 reads=195 probes=83 hits=40 miss=195 ev=175 mk=406fd278ee286727 mw=40e1d1d0dd2f1aa0 oc=6a87084a02e6a3aa";
pub const GOLDEN_ALPHA05: &str = "b=349 sb=323 ib=26 se=59935 cse=25130 reads=172 probes=82 hits=151 miss=172 ev=152 mk=406d92e4d3bf2f55 mw=40f96c5276c8b439 oc=0f796d9b718c98d7";
pub const GOLDEN_ADAPTIVE: &str = "b=351 sb=326 ib=25 se=59935 cse=25507 reads=174 probes=77 hits=152 miss=174 ev=154 mk=406db495ebfa8f7e mw=40f8f40c39581062 oc=9c4d2ee4b4484b2e";

/// `(label, golden)` rows matching [`scheduler_factories`] order.
pub fn goldens() -> Vec<(&'static str, &'static str)> {
    vec![
        ("NoShare", GOLDEN_NOSHARE),
        ("RR", GOLDEN_RR),
        ("greedy", GOLDEN_GREEDY),
        ("aged", GOLDEN_AGED),
        ("alpha05", GOLDEN_ALPHA05),
        ("adaptive", GOLDEN_ADAPTIVE),
    ]
}
