//! End-to-end integration: every layer from HTM partitioning to run reports.

use liferaft::prelude::*;

const LEVEL: u8 = 8;

fn catalog() -> MaterializedCatalog {
    let sky = liferaft::catalog::generate::uniform_sky(30_000, LEVEL, 17);
    MaterializedCatalog::build(&sky, LEVEL, 300, 4096)
}

fn contended_trace(n_buckets: u32, n_queries: usize, seed: u64) -> Trace {
    let mut cfg = WorkloadConfig::paper_like(LEVEL, n_buckets, n_queries, seed);
    cfg.size_small = (10, 30);
    cfg.size_large = (50, 150);
    // The paper's 10-arcsec error circles suit SDSS densities (200M
    // objects); our 30k-object test sky is ~4 orders of magnitude sparser,
    // so scale the match radius up to keep real joins producing matches.
    cfg.error_radius = 0.03;
    TraceGenerator::new(cfg).generate()
}

/// Every scheduler produces the identical multiset of cross-match results;
/// only ordering, timing, and I/O differ.
#[test]
fn schedulers_agree_on_query_answers() {
    let cat = catalog();
    let trace = contended_trace(cat.partition().num_buckets() as u32, 40, 3);
    let timed = trace.with_arrivals(poisson_arrivals(0.5, trace.len(), 9));
    let sim = Simulation::new(&cat, SimConfig::with_real_joins());
    let params = MetricParams::paper();

    let mut lineup: Vec<Box<dyn Scheduler>> = vec![
        Box::new(NoShareScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(LifeRaftScheduler::greedy(params)),
        Box::new(LifeRaftScheduler::new(params, AgingMode::Normalized, 0.5)),
        Box::new(LifeRaftScheduler::age_based(params)),
    ];
    let mut matches = None;
    for s in &mut lineup {
        let r = sim.run(&timed, s.as_mut());
        assert_eq!(r.queries, trace.len(), "{}", r.scheduler);
        match matches {
            None => matches = Some(r.total_matches),
            Some(m) => assert_eq!(m, r.total_matches, "{} disagrees", r.scheduler),
        }
    }
    assert!(
        matches.unwrap() > 0,
        "the workload must actually match things"
    );
}

/// The paper's headline ordering: on a contended workload, data-driven
/// batching beats arrival order, which beats share-nothing evaluation.
#[test]
fn throughput_ordering_greedy_aged_noshare() {
    let cat = catalog();
    let trace = contended_trace(cat.partition().num_buckets() as u32, 120, 5);
    // Saturating arrival rate: everyone queues, sharing opportunities abound.
    let timed = trace.with_arrivals(poisson_arrivals(1.0, trace.len(), 11));
    let sim = Simulation::new(&cat, SimConfig::paper());
    let params = MetricParams::paper();

    let greedy = sim.run(&timed, &mut LifeRaftScheduler::greedy(params));
    let aged = sim.run(&timed, &mut LifeRaftScheduler::age_based(params));
    let noshare = sim.run(&timed, &mut NoShareScheduler::new());

    assert!(
        greedy.throughput_qps >= aged.throughput_qps,
        "greedy {} < aged {}",
        greedy.throughput_qps,
        aged.throughput_qps
    );
    assert!(
        aged.throughput_qps > noshare.throughput_qps,
        "even α=1 shares I/O and must beat NoShare: {} vs {}",
        aged.throughput_qps,
        noshare.throughput_qps
    );
    // The two-fold claim, loosely: greedy at least 1.5x NoShare here.
    assert!(
        greedy.throughput_qps > 1.5 * noshare.throughput_qps,
        "batching win too small: {} vs {}",
        greedy.throughput_qps,
        noshare.throughput_qps
    );
    // NoShare has the worst mean response time (Figure 7b).
    assert!(noshare.mean_response_s() > greedy.mean_response_s() * 0.9);
}

/// RR's throughput resembles the α=1 LifeRaft configuration (Figure 7a:
/// "the performance of RR is similar to a LifeRaft scheduler with an α of 1
/// because neither approach accounts for contention").
#[test]
fn rr_resembles_age_based_liferaft() {
    let cat = catalog();
    let trace = contended_trace(cat.partition().num_buckets() as u32, 100, 7);
    let timed = trace.with_arrivals(poisson_arrivals(0.5, trace.len(), 13));
    let sim = Simulation::new(&cat, SimConfig::paper());
    let params = MetricParams::paper();

    let aged = sim.run(&timed, &mut LifeRaftScheduler::age_based(params));
    let rr = sim.run(&timed, &mut RoundRobinScheduler::new());
    let ratio = rr.throughput_qps / aged.throughput_qps;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "RR/aged throughput ratio {ratio} outside the similarity band"
    );
}

/// Work conservation across the whole stack: assignments in == serviced ==
/// tracked completions.
#[test]
fn conservation_of_work() {
    let cat = catalog();
    let trace = contended_trace(cat.partition().num_buckets() as u32, 60, 19);
    let pre = QueryPreProcessor::new(cat.partition());
    let expected: u64 = trace
        .queries()
        .iter()
        .map(|q| {
            pre.preprocess(q)
                .iter()
                .map(|i| i.len() as u64)
                .sum::<u64>()
        })
        .sum();
    let timed = trace.with_arrivals(poisson_arrivals(0.3, trace.len(), 23));
    let sim = Simulation::new(&cat, SimConfig::paper());
    for s in [
        &mut NoShareScheduler::new() as &mut dyn Scheduler,
        &mut RoundRobinScheduler::new(),
        &mut LifeRaftScheduler::greedy(MetricParams::paper()),
    ] {
        let r = sim.run(&timed, s);
        assert_eq!(r.serviced_entries, expected, "{}", r.scheduler);
        let outcome_assignments: u64 = r.outcomes.iter().map(|o| o.assignments).sum();
        assert_eq!(outcome_assignments, expected, "{}", r.scheduler);
    }
}

/// Determinism: identical runs produce identical reports.
#[test]
fn simulation_is_deterministic() {
    let cat = catalog();
    let trace = contended_trace(cat.partition().num_buckets() as u32, 30, 29);
    let timed = trace.with_arrivals(poisson_arrivals(0.4, trace.len(), 31));
    let sim = Simulation::new(&cat, SimConfig::paper());
    let a = sim.run(
        &timed,
        &mut LifeRaftScheduler::greedy(MetricParams::paper()),
    );
    let b = sim.run(
        &timed,
        &mut LifeRaftScheduler::greedy(MetricParams::paper()),
    );
    assert_eq!(a.throughput_qps, b.throughput_qps);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.io.bucket_reads, b.io.bucket_reads);
    assert_eq!(a.response.mean(), b.response.mean());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x, y);
    }
}

/// The hybrid join strategy kicks in for small queues and shortens runs
/// relative to scan-only. NoShare never uses it (it models the pre-existing
/// scan-based evaluation), so the comparison runs under the aged LifeRaft
/// policy, whose in-order batches are often small.
#[test]
fn hybrid_join_helps_small_batches() {
    let cat = catalog();
    let trace = contended_trace(cat.partition().num_buckets() as u32, 60, 37);
    let timed = trace.with_arrivals(poisson_arrivals(0.3, trace.len(), 41));

    let mut scan_only = SimConfig::paper();
    scan_only.hybrid = HybridConfig::scan_only();
    let hybrid_sim = Simulation::new(&cat, SimConfig::paper());
    let scan_sim = Simulation::new(&cat, scan_only);
    let params = MetricParams::paper();

    let h = hybrid_sim.run(&timed, &mut LifeRaftScheduler::age_based(params));
    let s = scan_sim.run(&timed, &mut LifeRaftScheduler::age_based(params));
    assert!(h.indexed_batches > 0, "hybrid must use the index sometimes");
    assert_eq!(s.indexed_batches, 0);
    assert!(
        h.makespan_s <= s.makespan_s * 1.02,
        "hybrid should not lengthen the aged policy: {} vs {}",
        h.makespan_s,
        s.makespan_s
    );
    // NoShare ignores the hybrid configuration entirely.
    let n = hybrid_sim.run(&timed, &mut NoShareScheduler::new());
    assert_eq!(n.indexed_batches, 0, "NoShare is scan-based by definition");
}

/// Starvation: the greedy policy leaves requests waiting far longer than
/// the age-based policy on a skewed workload.
#[test]
fn age_bias_bounds_starvation() {
    let cat = catalog();
    let trace = contended_trace(cat.partition().num_buckets() as u32, 120, 43);
    let timed = trace.with_arrivals(poisson_arrivals(1.0, trace.len(), 47));
    let sim = Simulation::new(&cat, SimConfig::paper());
    let params = MetricParams::paper();

    let greedy = sim.run(&timed, &mut LifeRaftScheduler::greedy(params));
    let aged = sim.run(&timed, &mut LifeRaftScheduler::age_based(params));
    assert!(
        greedy.max_wait_ms > aged.max_wait_ms,
        "greedy should starve more: {} vs {}",
        greedy.max_wait_ms,
        aged.max_wait_ms
    );
    // And the p99 response tail of aged is no worse than greedy's.
    assert!(
        aged.response.percentile(99.0) <= greedy.response.percentile(99.0) * 1.5,
        "aged tail {} vs greedy tail {}",
        aged.response.percentile(99.0),
        greedy.response.percentile(99.0)
    );
}
