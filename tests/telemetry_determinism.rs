//! Flight-recorder determinism suite.
//!
//! Three pins, all against the shared fixture:
//!
//! 1. **Byte-identical streams across executors**: with the JSONL sink on,
//!    stepped and threaded runs emit the *same bytes* — event stream and
//!    the derived Chrome/Perfetto trace document — at 2/4/8 shards for all
//!    six pinned schedulers.
//! 2. **Controller paths keep the guarantee**: elastic rebalancing and the
//!    overload front door contribute router events (migrations, verdicts,
//!    samples) to the merged stream, and the bytes still match across
//!    executors.
//! 3. **The failover path keeps it too**: an injected shard crash adds
//!    outage edges, evacuations, and re-delivery attempts to the router
//!    stream — one event per decision-log record — and stepped/threaded
//!    streams stay byte-identical.
//! 4. **And the transport path**: lossy router↔shard links add drops,
//!    retransmissions, duplicate suppressions, and hedges to the router
//!    stream — one event per transport-log record — and stepped/threaded
//!    streams stay byte-identical.
//! 5. **Recording is behaviour-neutral**: with the ring or JSONL sink on,
//!    a single-shard runtime still reproduces the recorded single-engine
//!    goldens bit-for-bit — the flight recorder observes, never steers.
//!    A within-capacity ring records the same stream as the unbounded
//!    JSONL sink; an undersized ring drops oldest-first and says so.

mod common;

use common::{fingerprint, fixture, goldens, scheduler_factories};
use liferaft::prelude::*;

fn jsonl_of(report: &RuntimeReport) -> String {
    report
        .telemetry
        .as_ref()
        .expect("telemetry was enabled")
        .to_jsonl()
}

#[test]
fn jsonl_stream_is_byte_identical_across_executors() {
    let (catalog, timed) = fixture();
    for n_shards in [2u32, 4, 8] {
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        config.telemetry = TelemetryConfig::jsonl();
        let rt = ShardedRuntime::new(&catalog, config);
        for (label, mk) in scheduler_factories() {
            let stepped = rt.run(&timed, &mut |_| mk(), ExecMode::Stepped);
            let threaded = rt.run(&timed, &mut |_| mk(), ExecMode::Threaded);
            let ctx = format!("{label} @ {n_shards} shards");
            let a = jsonl_of(&stepped);
            let b = jsonl_of(&threaded);
            assert!(!a.is_empty(), "{ctx}: recorder produced no events");
            assert_eq!(a, b, "{ctx}: JSONL streams diverged across executors");
            assert_eq!(
                stepped.telemetry.as_ref().unwrap().to_chrome_trace(),
                threaded.telemetry.as_ref().unwrap().to_chrome_trace(),
                "{ctx}: Chrome trace documents diverged across executors"
            );
            // Every routed fragment leaves one arrival and one completion
            // in the merged stream — at least one per query, exactly one
            // per (query, shard) pair — and batches are balanced
            // start/end pairs.
            let arrivals = a.matches("\"kind\":\"query_arrival\"").count();
            assert!(arrivals >= timed.len(), "{ctx}: arrival events");
            assert_eq!(
                a.matches("\"kind\":\"query_complete\"").count(),
                arrivals,
                "{ctx}: every arrived fragment completes"
            );
            assert_eq!(
                a.matches("\"kind\":\"batch_start\"").count(),
                a.matches("\"kind\":\"batch_end\"").count(),
                "{ctx}: unbalanced batch spans"
            );
        }
    }
}

#[test]
fn controller_paths_keep_the_byte_identical_stream() {
    let (catalog, timed) = fixture();
    let picked: Vec<_> = scheduler_factories()
        .into_iter()
        .filter(|(label, _)| *label == "greedy" || *label == "adaptive")
        .collect();

    // Elastic rebalancing (same tuning as `runtime_determinism`, which pins
    // that this trace actually migrates at 4 shards).
    let mut rebalance = RebalanceConfig::every(SimDuration::from_secs(30));
    rebalance.min_imbalance = 1.05;
    for n_shards in [2u32, 4, 8] {
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        config.rebalance = rebalance;
        config.telemetry = TelemetryConfig::jsonl();
        let rt = ShardedRuntime::new(&catalog, config);
        for (label, mk) in &picked {
            let stepped = rt.run(&timed, &mut |_| mk(), ExecMode::Stepped);
            let threaded = rt.run(&timed, &mut |_| mk(), ExecMode::Threaded);
            let ctx = format!("{label} @ {n_shards} elastic shards");
            let a = jsonl_of(&stepped);
            assert_eq!(a, jsonl_of(&threaded), "{ctx}: streams diverged");
            let moves = stepped
                .rebalance
                .as_ref()
                .expect("elastic run records a log")
                .total_moves();
            assert_eq!(
                a.matches("\"kind\":\"migration_applied\"").count(),
                moves,
                "{ctx}: one applied event per recorded migration"
            );
        }
    }

    // The overload front door (same tuning as `overload_scenarios`).
    let mut door = FrontDoorConfig::bounded(2_000);
    door.interactive_max_assignments = 200;
    door.batch_min_assignments = 600;
    door.max_waiting_assignments = Some(6_000);
    for n_shards in [2u32, 4, 8] {
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        config.front_door = door;
        config.telemetry = TelemetryConfig::jsonl();
        let rt = ShardedRuntime::new(&catalog, config);
        for (label, mk) in &picked {
            let stepped = rt.run(&timed, &mut |_| mk(), ExecMode::Stepped);
            let threaded = rt.run(&timed, &mut |_| mk(), ExecMode::Threaded);
            let ctx = format!("{label} @ {n_shards} front-door shards");
            let a = jsonl_of(&stepped);
            assert_eq!(a, jsonl_of(&threaded), "{ctx}: streams diverged");
            // The door records a terminal verdict for every query; the
            // stream mirrors the verdict log exactly.
            let fd = stepped.front_door.as_ref().expect("front door is on");
            assert_eq!(
                a.matches("\"kind\":\"admitted\"").count()
                    + a.matches("\"kind\":\"rejected\"").count(),
                fd.log.verdicts.len(),
                "{ctx}: one verdict event per routed query"
            );
            assert_eq!(
                a.matches("\"kind\":\"admission_sampled\"").count(),
                fd.log.samples.len(),
                "{ctx}: one sample event per admission sample"
            );
        }
    }
}

#[test]
fn failover_path_keeps_the_byte_identical_stream() {
    // The crash scenario: a burst backlog, then one shard down mid-drain —
    // guaranteed evacuations and re-deliveries.
    let scale = ScenarioScale::small();
    let catalog = VirtualCatalog::new(scale.level, scale.n_buckets, 200, 4096, 7);
    let fx = build_scenario(ScenarioKind::ShardCrash, &scale);
    let picked: Vec<_> = scheduler_factories()
        .into_iter()
        .filter(|(label, _)| *label == "greedy" || *label == "adaptive")
        .collect();
    let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    config.faults = FaultPlan {
        stalls: fx.stalls.clone(),
        outages: fx.outages.clone(),
        links: fx.links.clone(),
    };
    config.failover = FailoverConfig::recovery();
    config.telemetry = TelemetryConfig::jsonl();
    let rt = ShardedRuntime::new(&catalog, config);
    for (label, mk) in &picked {
        let stepped = rt.run(&fx.trace, &mut |_| mk(), ExecMode::Stepped);
        let threaded = rt.run(&fx.trace, &mut |_| mk(), ExecMode::Threaded);
        let ctx = format!("{label} under the crash scenario");
        let a = jsonl_of(&stepped);
        assert_eq!(a, jsonl_of(&threaded), "{ctx}: streams diverged");
        assert_eq!(
            stepped.telemetry.as_ref().unwrap().to_chrome_trace(),
            threaded.telemetry.as_ref().unwrap().to_chrome_trace(),
            "{ctx}: Chrome trace documents diverged"
        );
        // The stream mirrors the failover decision log exactly.
        let fo = stepped.failover.as_ref().expect("failover is on");
        assert!(
            !fo.log.evacuations.is_empty() && !fo.log.redeliveries.is_empty(),
            "{ctx}: the crash must evacuate and re-deliver"
        );
        assert_eq!(
            a.matches("\"kind\":\"shard_down\"").count()
                + a.matches("\"kind\":\"shard_up\"").count(),
            fo.log.transitions.len(),
            "{ctx}: one event per outage edge"
        );
        assert_eq!(
            a.matches("\"kind\":\"bucket_evacuated\"").count(),
            fo.log.evacuations.len(),
            "{ctx}: one event per evacuated bucket"
        );
        assert_eq!(
            a.matches("\"kind\":\"fragment_retried\"").count(),
            fo.log.redeliveries.len(),
            "{ctx}: one event per re-delivery attempt"
        );
    }
}

#[test]
fn transport_path_keeps_the_byte_identical_stream() {
    // The lossy-link scenario: flaky links on two shards plus a straggler
    // stall — guaranteed drops, retransmissions, suppressions, and (with
    // hedging on) hedge decisions.
    let scale = ScenarioScale::small();
    let catalog = VirtualCatalog::new(scale.level, scale.n_buckets, 200, 4096, 7);
    let fx = build_scenario(ScenarioKind::LossyLink, &scale);
    let picked: Vec<_> = scheduler_factories()
        .into_iter()
        .filter(|(label, _)| *label == "greedy" || *label == "adaptive")
        .collect();
    let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    config.faults = FaultPlan {
        stalls: fx.stalls.clone(),
        outages: fx.outages.clone(),
        links: fx.links.clone(),
    };
    config.transport = TransportConfig::hedged();
    config.transport.hedge.quantile = 0.75;
    config.transport.hedge.latency_multiplier = 1.5;
    config.transport.hedge.min_samples = 5;
    config.telemetry = TelemetryConfig::jsonl();
    let rt = ShardedRuntime::new(&catalog, config);
    for (label, mk) in &picked {
        let stepped = rt.run(&fx.trace, &mut |_| mk(), ExecMode::Stepped);
        let threaded = rt.run(&fx.trace, &mut |_| mk(), ExecMode::Threaded);
        let ctx = format!("{label} under the lossy-link scenario");
        let a = jsonl_of(&stepped);
        assert_eq!(a, jsonl_of(&threaded), "{ctx}: streams diverged");
        assert_eq!(
            stepped.telemetry.as_ref().unwrap().to_chrome_trace(),
            threaded.telemetry.as_ref().unwrap().to_chrome_trace(),
            "{ctx}: Chrome trace documents diverged"
        );
        // The stream mirrors the transport decision log exactly.
        let tp = stepped.transport.as_ref().expect("transport is on");
        assert!(
            !tp.log.drops.is_empty()
                && !tp.log.retransmits.is_empty()
                && !tp.log.suppressed.is_empty()
                && !tp.log.hedges.is_empty(),
            "{ctx}: the lossy links must drop, retransmit, suppress, and hedge"
        );
        assert_eq!(
            a.matches("\"kind\":\"fragment_dropped\"").count(),
            tp.log.drops.len(),
            "{ctx}: one event per dropped message"
        );
        assert_eq!(
            a.matches("\"kind\":\"fragment_retransmitted\"").count(),
            tp.log.retransmits.len(),
            "{ctx}: one event per retransmission"
        );
        assert_eq!(
            a.matches("\"kind\":\"duplicate_suppressed\"").count(),
            tp.log.suppressed.len(),
            "{ctx}: one event per receiver-side dedup"
        );
        assert_eq!(
            a.matches("\"kind\":\"fragment_hedged\"").count(),
            tp.log.hedges.len(),
            "{ctx}: one event per hedge decision"
        );
    }
}

#[test]
fn telemetry_sinks_leave_the_recorded_goldens_untouched() {
    let (catalog, timed) = fixture();
    // A ring big enough to never drop on this fixture, and the unbounded
    // JSONL sink: identical decision paths *and* identical streams.
    for telemetry in [TelemetryConfig::ring(1 << 20), TelemetryConfig::jsonl()] {
        let mut config = RuntimeConfig::single(SimConfig::paper());
        config.telemetry = telemetry;
        let rt = ShardedRuntime::new(&catalog, config);
        for ((label, mk), (_, golden)) in scheduler_factories().into_iter().zip(goldens()) {
            for mode in [ExecMode::Stepped, ExecMode::Threaded] {
                let report = rt.run(&timed, &mut |_| mk(), mode);
                assert_eq!(
                    fingerprint(&report.global).as_str(),
                    golden,
                    "{label} via {mode:?}: recording changed the decision path"
                );
                let telemetry = report.telemetry.as_ref().expect("telemetry on");
                assert!(!telemetry.events.is_empty(), "{label}: no events");
                assert_eq!(
                    report.shards.iter().map(|s| s.events_dropped).sum::<u64>(),
                    0,
                    "{label}: unexpected drops"
                );
            }
        }
    }

    // Within capacity, the ring and JSONL streams are the same bytes.
    let greedy = scheduler_factories()[2].1;
    let mut ring_cfg = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    ring_cfg.telemetry = TelemetryConfig::ring(1 << 20);
    let mut jsonl_cfg = ring_cfg.clone();
    jsonl_cfg.telemetry = TelemetryConfig::jsonl();
    let ring_run =
        ShardedRuntime::new(&catalog, ring_cfg).run(&timed, &mut |_| greedy(), ExecMode::Stepped);
    let jsonl_run =
        ShardedRuntime::new(&catalog, jsonl_cfg).run(&timed, &mut |_| greedy(), ExecMode::Stepped);
    assert_eq!(
        jsonl_of(&ring_run),
        jsonl_of(&jsonl_run),
        "within-capacity ring diverged from the unbounded sink"
    );

    // An undersized ring sheds oldest events, keeps the newest, reports the
    // drop count — and still never perturbs the run itself.
    let mut tiny = RuntimeConfig::single(SimConfig::paper());
    tiny.telemetry = TelemetryConfig::ring(16);
    let run = ShardedRuntime::new(&catalog, tiny).run(&timed, &mut |_| greedy(), ExecMode::Stepped);
    assert_eq!(fingerprint(&run.global).as_str(), common::GOLDEN_GREEDY);
    let kept = run.telemetry.as_ref().expect("telemetry on");
    assert_eq!(kept.events.len(), 16, "ring keeps exactly its capacity");
    assert!(
        run.shards[0].events_dropped > 0,
        "undersized ring must report drops"
    );
    let last = kept.events.last().expect("non-empty ring");
    assert!(
        matches!(
            last.kind,
            liferaft::telemetry::EventKind::BatchEnd { .. }
                | liferaft::telemetry::EventKind::QueryComplete { .. }
        ),
        "ring keeps the newest events (run tail), got {:?}",
        last.kind
    );
}
