//! The fault/overload scenario suite, end to end.
//!
//! Every scenario in `liferaft_sim::scenario` runs through the sharded
//! runtime's front door with all six pinned schedulers, in both executors:
//!
//! 1. **Determinism under overload**: threaded == stepped, bit-for-bit —
//!    global report, per-shard reports, admission stats, and the full
//!    front-door report (verdicts, samples, per-class summaries). Injected
//!    shard stalls are part of the contract.
//! 2. **Accounting conservation**: completed + rejected == submitted, for
//!    the run and per class; nothing is lost or double-counted.
//! 3. **The flash-crowd acceptance bar**: with the controller on,
//!    interactive-class p90 response is measurably below the
//!    controller-off run on the identical trace, while batch-class work is
//!    shed into retries (and the neutral, unbounded door reproduces the
//!    controller-off behaviour bit-for-bit).

mod common;

use common::{fingerprint, scheduler_factories};
use liferaft::prelude::*;

/// The catalog every scenario replays against (matches
/// [`ScenarioScale::small`]: level 10, 128 buckets).
fn scenario_catalog() -> VirtualCatalog {
    let scale = ScenarioScale::small();
    VirtualCatalog::new(scale.level, scale.n_buckets, 200, 4096, 7)
}

/// The suite's front-door tuning: tight enough that overload scenarios
/// actually queue and shed, loose enough that nominal load sails through.
fn door() -> FrontDoorConfig {
    let mut d = FrontDoorConfig::bounded(2_000);
    d.interactive_max_assignments = 200;
    d.batch_min_assignments = 600;
    d.max_waiting_assignments = Some(6_000);
    d
}

/// A 4-shard pool with the scenario's recommended fault injection converted
/// into the runtime's fault plan. Link-fault scenarios run behind the
/// hedged transport controller; outage scenarios behind the failover
/// controller; everything else behind the front door (the three paths are
/// mutually exclusive by config validation).
fn pool_config(fx: &ScenarioFixture) -> RuntimeConfig {
    let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
    config.faults = FaultPlan {
        stalls: fx.stalls.clone(),
        outages: fx.outages.clone(),
        links: fx.links.clone(),
    };
    if !fx.links.is_empty() {
        config.transport = TransportConfig::hedged();
        // Anchor the hedge threshold below the straggler-inflated p90:
        // with a bimodal response mix a `2 × p90` trigger only clips the
        // extreme tail, while `1.5 × p75` re-issues stalled fragments
        // early enough to pull the p90 itself down without duplicating
        // so much work that the healthy shards clog.
        config.transport.hedge.quantile = 0.75;
        config.transport.hedge.latency_multiplier = 1.5;
        config.transport.hedge.min_samples = 5;
    } else if fx.outages.is_empty() {
        config.front_door = door();
    } else {
        config.failover = FailoverConfig::recovery();
    }
    config
}

#[test]
fn every_scenario_is_deterministic_across_executors_and_schedulers() {
    let catalog = scenario_catalog();
    let scale = ScenarioScale::small();
    for kind in ScenarioKind::ALL {
        let fx = build_scenario(kind, &scale);
        let rt = ShardedRuntime::new(&catalog, pool_config(&fx));
        for (label, mk) in scheduler_factories() {
            let stepped = rt.run(&fx.trace, &mut |_| mk(), ExecMode::Stepped);
            let threaded = rt.run(&fx.trace, &mut |_| mk(), ExecMode::Threaded);
            let ctx = format!("{} / {label}", kind.name());
            assert_eq!(
                fingerprint(&stepped.global),
                fingerprint(&threaded.global),
                "{ctx}: global reports diverged"
            );
            for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
                assert_eq!(
                    fingerprint(&a.report),
                    fingerprint(&b.report),
                    "{ctx}: shard {} diverged",
                    a.shard
                );
                assert_eq!(a.admission, b.admission, "{ctx}: admission stats");
            }
            assert_eq!(
                stepped.front_door, threaded.front_door,
                "{ctx}: front-door reports diverged"
            );
            assert_eq!(
                stepped.failover, threaded.failover,
                "{ctx}: failover reports diverged"
            );
            assert_eq!(
                stepped.transport, threaded.transport,
                "{ctx}: transport reports diverged"
            );

            // Conservation: every submitted query is exactly-once terminal,
            // whichever controller fronted the run.
            if let Some(tp) = stepped.transport.as_ref() {
                assert_eq!(
                    stepped.global.outcomes.len() + tp.rejected.len(),
                    fx.trace.len(),
                    "{ctx}: completed + rejected must equal submitted"
                );
                for c in &tp.per_class {
                    assert_eq!(
                        c.completed + c.rejected,
                        c.submitted,
                        "{ctx}: {:?} class conservation",
                        c.class
                    );
                }
                assert_eq!(
                    tp.hedge_wins + tp.hedge_losses,
                    tp.log.hedges.len() as u64,
                    "{ctx}: every hedge race must settle exactly once"
                );
            } else if let Some(fd) = stepped.front_door.as_ref() {
                assert_eq!(
                    stepped.global.outcomes.len() + fd.rejected.len(),
                    fx.trace.len(),
                    "{ctx}: completed + rejected must equal submitted"
                );
                for class in QueryClass::ALL {
                    let c = fd.class(class);
                    assert_eq!(
                        c.submitted,
                        c.admitted + c.rejected,
                        "{ctx}: {} class accounting",
                        class.label()
                    );
                }
            } else {
                let fo = stepped.failover.as_ref().expect("failover is on");
                assert_eq!(
                    stepped.global.outcomes.len() + fo.rejected.len(),
                    fx.trace.len(),
                    "{ctx}: completed + rejected must equal submitted"
                );
                for c in &fo.per_class {
                    assert_eq!(
                        c.completed + c.rejected,
                        c.submitted,
                        "{ctx}: {:?} class conservation",
                        c.class
                    );
                }
            }
        }
    }
}

#[test]
fn flash_crowd_controller_protects_interactive_latency() {
    let catalog = scenario_catalog();
    let fx = build_scenario(ScenarioKind::FlashCrowd, &ScenarioScale::small());
    let greedy = scheduler_factories()[2].1;

    // Controller off — but through a *neutral* (unbounded) door, so the
    // run still records per-class latency for the comparison below.
    let mut off_cfg = pool_config(&fx);
    off_cfg.front_door = FrontDoorConfig::bounded(u64::MAX);
    let off_rt = ShardedRuntime::new(&catalog, off_cfg);
    let off = off_rt.run(&fx.trace, &mut |_| greedy(), ExecMode::Stepped);

    // The neutral door really is neutral: bit-identical to disabled.
    let mut disabled_cfg = pool_config(&fx);
    disabled_cfg.front_door = FrontDoorConfig::disabled();
    let disabled_rt = ShardedRuntime::new(&catalog, disabled_cfg);
    for mode in [ExecMode::Stepped, ExecMode::Threaded] {
        let neutral = off_rt.run(&fx.trace, &mut |_| greedy(), mode);
        let plain = disabled_rt.run(&fx.trace, &mut |_| greedy(), mode);
        assert_eq!(
            fingerprint(&neutral.global),
            fingerprint(&plain.global),
            "{mode:?}: the unbounded door must be behaviour-neutral"
        );
        assert!(plain.front_door.is_none());
    }

    // Controller on.
    let on_rt = ShardedRuntime::new(&catalog, pool_config(&fx));
    let on = on_rt.run(&fx.trace, &mut |_| greedy(), ExecMode::Stepped);

    let fd_on = on.front_door.as_ref().expect("controller on");
    let fd_off = off.front_door.as_ref().expect("neutral door records");
    let int_on = fd_on.class(QueryClass::Interactive);
    let int_off = fd_off.class(QueryClass::Interactive);
    assert!(
        int_on.submitted > 0,
        "fixture must contain interactive-class queries"
    );
    assert!(
        fd_on.log.total_shed_events() > 0,
        "the flash crowd must shed batch-class work"
    );
    let p90_on = int_on.response.percentile(90.0);
    let p90_off = int_off.response.percentile(90.0);
    assert!(
        p90_on < p90_off,
        "controller must cut interactive p90 under the flash crowd \
         (on: {p90_on:.2}s, off: {p90_off:.2}s)"
    );
    // Shedding is bounded and accounted: every retry either landed or
    // ended in a recorded rejection.
    let batch_on = fd_on.class(QueryClass::Batch);
    assert_eq!(batch_on.submitted, batch_on.admitted + batch_on.rejected);
}

/// p90 response over the interactive class (default front-door thresholds —
/// the same classification the failover report conserves by).
fn interactive_p90_s(report: &RunReport) -> f64 {
    let classes = FrontDoorConfig::disabled();
    let samples: Vec<f64> = report
        .outcomes
        .iter()
        .filter(|o| classes.classify(o.assignments) == QueryClass::Interactive)
        .map(|o| o.response_time().as_secs_f64())
        .collect();
    assert!(!samples.is_empty(), "no interactive-class completions");
    Summary::from_samples(samples).percentile(90.0)
}

#[test]
fn shard_crash_failover_restores_service_where_off_strands_it() {
    let catalog = scenario_catalog();
    let fx = build_scenario(ScenarioKind::ShardCrash, &ScenarioScale::small());
    assert!(
        !fx.outages.is_empty(),
        "crash fixture must declare an outage"
    );
    let greedy = scheduler_factories()[2].1;

    // No-fault baseline: the identical trace with the crash edited out.
    let mut base_cfg = pool_config(&fx);
    base_cfg.faults = FaultPlan::default();
    base_cfg.failover = FailoverConfig::disabled();
    let base_rt = ShardedRuntime::new(&catalog, base_cfg);
    let base = base_rt.run(&fx.trace, &mut |_| greedy(), ExecMode::Stepped);

    // Failover on (pool_config turns on recovery for crash fixtures).
    let on_rt = ShardedRuntime::new(&catalog, pool_config(&fx));
    let on = on_rt.run(&fx.trace, &mut |_| greedy(), ExecMode::Stepped);

    // Failover off: the outage still freezes the shard, nothing recovers —
    // the dead shard's backlog strands until it rejoins.
    let mut off_cfg = pool_config(&fx);
    off_cfg.failover = FailoverConfig::disabled();
    let off_rt = ShardedRuntime::new(&catalog, off_cfg);
    let off = off_rt.run(&fx.trace, &mut |_| greedy(), ExecMode::Stepped);

    // Exactly-once under the crash: every query reaches one terminal
    // outcome, and the crash actually moved work.
    let fo = on.failover.as_ref().expect("failover report");
    assert_eq!(
        on.global.outcomes.len() + fo.rejected.len(),
        fx.trace.len(),
        "failover-on run lost track of a query"
    );
    assert!(
        fo.log.evacuated_entries() > 0,
        "the crash must strand a backlog worth evacuating"
    );
    assert!(
        fo.recovery_lag.is_some(),
        "evacuations must yield a recovery-lag measurement"
    );

    // The acceptance bar: recovery holds interactive p90 within 3× of the
    // crash-free baseline, while the unrecovered run blows through it.
    let p90_base = interactive_p90_s(&base.global);
    let p90_on = interactive_p90_s(&on.global);
    let p90_off = interactive_p90_s(&off.global);
    assert!(
        p90_on <= 3.0 * p90_base,
        "failover must contain the crash (on: {p90_on:.2}s, baseline: {p90_base:.2}s)"
    );
    assert!(
        p90_off > p90_on,
        "no recovery must hurt (off: {p90_off:.2}s, on: {p90_on:.2}s)"
    );
    assert!(
        p90_off > 2.0 * p90_base,
        "the unrecovered crash must grossly delay the stranded work \
         (off: {p90_off:.2}s, baseline: {p90_base:.2}s)"
    );
}

#[test]
fn lossy_link_hedging_beats_retransmit_only_delivery() {
    let catalog = scenario_catalog();
    let fx = build_scenario(ScenarioKind::LossyLink, &ScenarioScale::small());
    assert!(
        !fx.links.is_empty(),
        "lossy fixture must declare link faults"
    );
    assert!(
        !fx.stalls.is_empty(),
        "lossy fixture must declare a straggler"
    );
    let greedy = scheduler_factories()[2].1;

    // Hedge off: retransmit/dedup delivery only — stragglers ride out the
    // stalled shard.
    let mut off_cfg = pool_config(&fx);
    off_cfg.transport.hedge.enabled = false;
    let off_rt = ShardedRuntime::new(&catalog, off_cfg);
    let off = off_rt.run(&fx.trace, &mut |_| greedy(), ExecMode::Stepped);

    // Hedge on (pool_config enables p90 hedging for link fixtures).
    let on_rt = ShardedRuntime::new(&catalog, pool_config(&fx));
    let on = on_rt.run(&fx.trace, &mut |_| greedy(), ExecMode::Stepped);

    // The lossy links really bit, both runs stayed conservative.
    for (label, report) in [("off", &off), ("on", &on)] {
        let tp = report.transport.as_ref().expect("transport report");
        assert!(
            !tp.log.drops.is_empty() && !tp.log.retransmits.is_empty(),
            "hedge-{label}: the lossy windows must force retransmits"
        );
        assert!(
            !tp.log.suppressed.is_empty(),
            "hedge-{label}: ack loss must force duplicate suppression"
        );
        assert_eq!(
            report.global.outcomes.len() + tp.rejected.len(),
            fx.trace.len(),
            "hedge-{label}: completed + rejected must equal submitted"
        );
    }
    let tp_on = on.transport.as_ref().unwrap();
    assert!(
        !tp_on.log.hedges.is_empty(),
        "the stalled shard's stragglers must hedge"
    );
    assert!(
        tp_on.hedge_wins > 0,
        "at least one hedge copy must beat its straggling original"
    );
    assert!(
        off.transport.as_ref().unwrap().log.hedges.is_empty(),
        "hedge-off must plan no hedges"
    );

    // The acceptance bar: hedging strictly cuts interactive p90 on the
    // identical lossy trace.
    let p90_on = interactive_p90_s(&on.global);
    let p90_off = interactive_p90_s(&off.global);
    assert!(
        p90_on < p90_off,
        "hedging must cut interactive p90 under lossy links \
         (on: {p90_on:.2}s, off: {p90_off:.2}s)"
    );
}
