//! Integration: adaptive α control and trace persistence.

use liferaft::prelude::*;

const LEVEL: u8 = 8;

fn setup() -> (MaterializedCatalog, Trace) {
    let sky = liferaft::catalog::generate::uniform_sky(20_000, LEVEL, 51);
    let cat = MaterializedCatalog::build(&sky, LEVEL, 200, 4096);
    let mut cfg = WorkloadConfig::paper_like(LEVEL, cat.partition().num_buckets() as u32, 60, 53);
    cfg.size_small = (8, 20);
    cfg.size_large = (30, 80);
    let trace = TraceGenerator::new(cfg).generate();
    (cat, trace)
}

/// Calibration produces monotone-consistent curves: at any saturation, the
/// selected α under tolerance 0 is the throughput-maximal point, and larger
/// tolerances never select a slower-responding point.
#[test]
fn tolerance_threshold_semantics_hold_on_calibrated_curves() {
    let (cat, trace) = setup();
    let (table, _) = calibrate_tradeoff_table(
        &cat,
        &trace,
        &[0.1, 0.5],
        &[0.0, 0.25, 0.5, 0.75, 1.0],
        SimConfig::paper(),
        61,
    );
    for curve in table.curves() {
        let a0 = curve.select_alpha(0.0);
        let max_tput = curve.max_throughput();
        let p0 = curve
            .points()
            .iter()
            .find(|p| p.alpha == a0)
            .expect("selected α is a calibrated point");
        assert_eq!(p0.throughput_qps, max_tput);
        // Widening the tolerance must never increase mean response time.
        let mut last_resp = f64::INFINITY;
        for tol in [0.0, 0.1, 0.2, 0.5, 1.0] {
            let a = curve.select_alpha(tol);
            let p = curve.points().iter().find(|p| p.alpha == a).unwrap();
            assert!(
                p.mean_response_s <= last_resp + 1e-9,
                "tolerance {tol} worsened response"
            );
            last_resp = p.mean_response_s;
        }
    }
}

/// The adaptive scheduler completes everything and lands between the best
/// and worst fixed-α policies on throughput and response.
#[test]
fn adaptive_scheduler_is_sane_on_bursty_load() {
    let (cat, trace) = setup();
    let alphas = [0.0, 0.5, 1.0];
    let (table, _) =
        calibrate_tradeoff_table(&cat, &trace, &[0.05, 0.5], &alphas, SimConfig::paper(), 67);
    let arrivals = bursty_arrivals(0.05, 0.5, SimDuration::from_secs(400), trace.len(), 71);
    let timed = trace.with_arrivals(arrivals);
    let sim = Simulation::new(&cat, SimConfig::paper());
    let params = MetricParams::paper();

    let controller = AlphaController::new(
        table,
        0.2,
        SimDuration::from_secs(100),
        SimDuration::from_secs(50),
        0.5,
    );
    let mut adaptive = AdaptiveScheduler::new(
        LifeRaftScheduler::new(params, AgingMode::Normalized, 0.5),
        controller,
    );
    let ra = sim.run(&timed, &mut adaptive);
    assert_eq!(ra.queries, trace.len());

    let fixed: Vec<RunReport> = alphas
        .iter()
        .map(|&a| {
            sim.run(
                &timed,
                &mut LifeRaftScheduler::new(params, AgingMode::Normalized, a),
            )
        })
        .collect();
    let best_tput = fixed.iter().map(|r| r.throughput_qps).fold(0.0, f64::max);
    let worst_tput = fixed
        .iter()
        .map(|r| r.throughput_qps)
        .fold(f64::INFINITY, f64::min);
    assert!(
        ra.throughput_qps >= worst_tput * 0.9,
        "adaptive {} far below worst fixed {}",
        ra.throughput_qps,
        worst_tput
    );
    assert!(
        ra.throughput_qps <= best_tput * 1.1,
        "adaptive {} above best fixed {} — accounting bug?",
        ra.throughput_qps,
        best_tput
    );
}

/// A trace written to disk and read back replays to the identical report.
#[test]
fn persisted_trace_replays_identically() {
    let (cat, trace) = setup();
    let mut buf = Vec::new();
    trace.write_to(&mut buf).expect("serialize");
    let restored = Trace::read_from(buf.as_slice()).expect("parse");
    assert_eq!(restored.len(), trace.len());

    let arrivals = poisson_arrivals(0.3, trace.len(), 73);
    let sim = Simulation::new(&cat, SimConfig::paper());
    let params = MetricParams::paper();
    let a = sim.run(
        &trace.with_arrivals(arrivals.clone()),
        &mut LifeRaftScheduler::greedy(params),
    );
    let b = sim.run(
        &restored.with_arrivals(arrivals),
        &mut LifeRaftScheduler::greedy(params),
    );
    assert_eq!(a.throughput_qps, b.throughput_qps);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.serviced_entries, b.serviced_entries);
    assert_eq!(a.response.mean(), b.response.mean());
}

/// The virtual (paper-scale, on-demand) catalog supports full cost-mode
/// replays with conserved work, and its real-join mode agrees with itself.
#[test]
fn virtual_catalog_replay() {
    const VLEVEL: u8 = 10;
    let cat = VirtualCatalog::new(VLEVEL, 512, 1_000, 4096, 79);
    let cfg = WorkloadConfig::paper_like(VLEVEL, 512, 50, 83);
    let trace = TraceGenerator::new(cfg).generate();
    let timed = trace.with_arrivals(poisson_arrivals(0.5, trace.len(), 89));

    let pre = QueryPreProcessor::new(cat.partition());
    let expected: u64 = trace
        .queries()
        .iter()
        .map(|q| {
            pre.preprocess(q)
                .iter()
                .map(|i| i.len() as u64)
                .sum::<u64>()
        })
        .sum();

    let sim = Simulation::new(&cat, SimConfig::paper());
    let r = sim.run(
        &timed,
        &mut LifeRaftScheduler::greedy(MetricParams::paper()),
    );
    assert_eq!(r.queries, 50);
    assert_eq!(r.serviced_entries, expected);

    // Real joins over the virtual catalog: deterministic match counts.
    let sim_real = Simulation::new(&cat, SimConfig::with_real_joins());
    let m1 = sim_real
        .run(
            &timed,
            &mut LifeRaftScheduler::greedy(MetricParams::paper()),
        )
        .total_matches;
    let m2 = sim_real
        .run(&timed, &mut NoShareScheduler::new())
        .total_matches;
    assert_eq!(
        m1, m2,
        "virtual-catalog joins must be scheduler-independent"
    );
}
