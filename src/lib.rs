//! # LifeRaft — data-driven batch processing for scientific databases
//!
//! A from-scratch Rust reproduction of *LifeRaft: Data-Driven, Batch
//! Processing for the Exploration of Scientific Databases* (Wang, Burns,
//! Malik — CIDR 2009).
//!
//! LifeRaft is a query scheduler for data-intensive scientific workloads.
//! Instead of processing queries in arrival order, it partitions data into
//! equal-sized buckets along the HTM space-filling curve, decomposes every
//! query into per-bucket sub-queries, and repeatedly services the bucket
//! with the highest *aged workload throughput* — batching all queries that
//! touch the same data into a single sequential scan. An age bias
//! `α ∈ [0, 1]` trades throughput (α = 0, most-contended-data-first) against
//! response time (α = 1, arrival order), and can be tuned adaptively from
//! workload saturation.
//!
//! This facade crate re-exports the whole workspace; see the individual
//! crates for deep documentation:
//!
//! | module | contents |
//! |---|---|
//! | [`htm`] | Hierarchical Triangular Mesh: IDs, point location, cap coverage |
//! | [`storage`] | disk cost model, bucket metadata, LRU bucket cache |
//! | [`catalog`] | synthetic skies, equal-sized bucket partitioning, virtual catalogs |
//! | [`query`] | cross-match queries, pre-processing, workload queues |
//! | [`join`] | sweep-merge / indexed / zones join engines, hybrid strategy |
//! | [`core`] | the schedulers: LifeRaft(α), NoShare, RR, adaptive α |
//! | [`workload`] | SkyQuery-shaped trace synthesis and analysis |
//! | [`sim`] | discrete-event simulation engine and run reports |
//! | [`runtime`] | sharded multi-worker serving runtime + parallel sweep driver |
//! | [`metrics`] | statistics, normalization, reporting tables |
//! | [`telemetry`] | flight recorder: event bus, per-shard time series, trace export |
//!
//! # Quickstart
//!
//! ```
//! use liferaft::prelude::*;
//!
//! // A small sky, partitioned into 100-object buckets at HTM level 8.
//! let sky = liferaft::catalog::generate::uniform_sky(5_000, 8, 42);
//! let catalog = MaterializedCatalog::build(&sky, 8, 100, 4096);
//!
//! // A synthetic hotspot workload, replayed at 0.5 queries/second.
//! let cfg = WorkloadConfig::paper_like(8, catalog.partition().num_buckets() as u32, 40, 7);
//! let trace = TraceGenerator::new(cfg).generate();
//! let timed = trace.with_arrivals(poisson_arrivals(0.5, trace.len(), 1));
//!
//! // Compare the greedy LifeRaft scheduler against NoShare.
//! let sim = Simulation::new(&catalog, SimConfig::paper());
//! let greedy = sim.run(&timed, &mut LifeRaftScheduler::greedy(MetricParams::paper()));
//! let noshare = sim.run(&timed, &mut NoShareScheduler::new());
//! assert!(greedy.throughput_qps >= noshare.throughput_qps);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use liferaft_catalog as catalog;
pub use liferaft_core as core;
pub use liferaft_htm as htm;
pub use liferaft_join as join;
pub use liferaft_metrics as metrics;
pub use liferaft_query as query;
pub use liferaft_runtime as runtime;
pub use liferaft_sim as sim;
pub use liferaft_storage as storage;
pub use liferaft_telemetry as telemetry;
pub use liferaft_workload as workload;

/// The types most applications need, in one import.
pub mod prelude {
    pub use liferaft_catalog::{
        Catalog, MaterializedCatalog, Partition, SkyObject, VirtualCatalog,
    };
    pub use liferaft_core::{
        AdaptiveScheduler, AgingMode, AlphaController, LifeRaftScheduler, MetricParams,
        NoShareScheduler, RoundRobinScheduler, Scheduler, TradeoffTable,
    };
    pub use liferaft_htm::{Cap, Coverer, HtmId, HtmRange, HtmRangeSet, Vec3};
    pub use liferaft_join::{HybridConfig, JoinStrategy};
    pub use liferaft_metrics::{Series, StreamingStats, Summary, Table};
    pub use liferaft_query::{CrossMatchQuery, MatchObject, Predicate, QueryId, QueryPreProcessor};
    pub use liferaft_runtime::{
        AdmissionConfig, ClassStats, ElasticShardMap, ExecMode, FailoverConfig, FailoverLog,
        FailoverReport, FaultPlan, FrontDoorConfig, FrontDoorReport, HedgeConfig, QueryClass,
        RebalanceConfig, RebalanceLog, RetryPolicy, RuntimeConfig, RuntimeReport, ShardAssignment,
        ShardId, ShardMap, ShardedRuntime, TransportConfig, TransportLog, TransportReport,
    };
    pub use liferaft_sim::{
        build_scenario, calibrate_tradeoff_table, EngineCore, LinkDirection, LinkFault, RunReport,
        ScenarioFixture, ScenarioKind, ScenarioScale, SimConfig, Simulation,
    };
    pub use liferaft_storage::{BucketCache, BucketId, CostModel, DiskModel, SimDuration, SimTime};
    pub use liferaft_telemetry::{
        Event, EventKind, TelemetryConfig, TelemetryMode, TelemetryReport, TelemetrySink,
    };
    pub use liferaft_workload::arrivals::{bursty_arrivals, poisson_arrivals, uniform_arrivals};
    pub use liferaft_workload::{TimedTrace, Trace, TraceGenerator, WorkloadConfig, WorkloadStats};
}
