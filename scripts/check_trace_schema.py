#!/usr/bin/env python3
"""Validate a flight-recorder JSONL trace against the checked-in schema.

Checks, per line:
  - the line parses as a single JSON object;
  - the envelope fields (t, shard, seq, kind) are present with the right
    types;
  - the kind is known, and the payload carries *exactly* that kind's
    fields (nothing missing, nothing extra) with the right types.

Checks, per stream:
  - per-shard `seq` is strictly increasing in stream order (the merge is
    canonical (time, shard, seq) order, so a shard's events appear in
    emission order even when raw timestamps interleave);
  - the stream is non-empty.

Deliberately NOT checked: global monotonicity of raw `t` — arrival events
carry the query's true arrival time, which legitimately precedes earlier
lines from busy shards.

Usage:
    check_trace_schema.py SCHEMA.json TRACE.jsonl [TRACE.jsonl ...]
"""

import json
import sys


def type_ok(value, ty):
    if ty == "uint":
        # bool is an int subclass in Python; reject it explicitly.
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0
    if ty == "bool":
        return isinstance(value, bool)
    if ty == "string":
        return isinstance(value, str)
    raise ValueError(f"unknown schema type {ty!r}")


def check_stream(path, envelope, kinds):
    errors = []
    counts = {}
    last_seq = {}
    n_lines = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                errors.append(f"{path}:{lineno}: empty line")
                continue
            n_lines += 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{path}:{lineno}: not valid JSON: {e}")
                continue
            if not isinstance(obj, dict):
                errors.append(f"{path}:{lineno}: not a JSON object")
                continue
            bad = False
            for field, ty in envelope.items():
                if field not in obj:
                    errors.append(f"{path}:{lineno}: missing envelope field {field!r}")
                    bad = True
                elif not type_ok(obj[field], ty):
                    errors.append(
                        f"{path}:{lineno}: envelope field {field!r} is not a {ty}: "
                        f"{obj[field]!r}")
                    bad = True
            if bad:
                continue
            kind = obj["kind"]
            if kind not in kinds:
                errors.append(f"{path}:{lineno}: unknown kind {kind!r}")
                continue
            counts[kind] = counts.get(kind, 0) + 1
            payload = kinds[kind]
            present = set(obj) - set(envelope)
            expected = set(payload)
            for field in sorted(expected - present):
                errors.append(f"{path}:{lineno}: {kind}: missing field {field!r}")
            for field in sorted(present - expected):
                errors.append(f"{path}:{lineno}: {kind}: unexpected field {field!r}")
            for field in sorted(expected & present):
                if not type_ok(obj[field], payload[field]):
                    errors.append(
                        f"{path}:{lineno}: {kind}: field {field!r} is not a "
                        f"{payload[field]}: {obj[field]!r}")
            shard = obj["shard"]
            seq = obj["seq"]
            if shard in last_seq and seq <= last_seq[shard]:
                errors.append(
                    f"{path}:{lineno}: shard {shard} seq went {last_seq[shard]} "
                    f"-> {seq} (must be strictly increasing)")
            last_seq[shard] = seq
    if n_lines == 0:
        errors.append(f"{path}: empty trace")
    return n_lines, counts, errors


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    schema_path, traces = sys.argv[1], sys.argv[2:]
    with open(schema_path) as f:
        schema = json.load(f)
    envelope, kinds = schema["envelope"], schema["kinds"]

    failed = False
    for path in traces:
        n_lines, counts, errors = check_stream(path, envelope, kinds)
        for e in errors[:50]:
            print(e, file=sys.stderr)
        if len(errors) > 50:
            print(f"... and {len(errors) - 50} more errors", file=sys.stderr)
        if errors:
            failed = True
            print(f"{path}: FAILED ({len(errors)} errors over {n_lines} events)")
        else:
            by_kind = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"{path}: ok ({n_lines} events: {by_kind})")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
