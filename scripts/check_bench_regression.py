#!/usr/bin/env python3
"""Bench-regression guard for sim_throughput.

Compares a fresh quick-mode run against the committed quick baseline and
fails when any scheduler's wall time regressed beyond a generous tolerance.

CI runners and developer machines differ in absolute speed, so raw wall
times are not comparable across hosts. The guard instead normalizes by the
*median* wall-time ratio across schedulers (the machine-drift factor) and
flags a scheduler only when it regressed relative to the rest of the fleet:

    ratio_i = wall_now_i / wall_base_i
    fail if ratio_i > median(ratio) * (1 + tolerance)

A uniform slowdown (slow runner) moves every ratio together and passes; a
decision-path regression in one scheduler moves only its ratio and fails.
An absolute backstop (median ratio > --max-drift) catches the pathological
case of *every* scheduler regressing in lockstep on comparable hardware.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.25] [--max-drift 4.0]
"""

import argparse
import json
import statistics
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {r["scheduler"]: r for r in doc.get("results", [])}
    if not rows:
        sys.exit(f"error: no results in {path}")
    return doc.get("mode"), rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed per-scheduler regression over the fleet "
                         "median ratio (default 0.25 = 25%%)")
    ap.add_argument("--max-drift", type=float, default=3.0,
                    help="cap on the median ratio itself (default 3.0). This "
                         "is the backstop for fleet-wide regressions — a "
                         "shared decision-path slowdown moves every ratio "
                         "together, which the relative gate cannot see — "
                         "while still leaving headroom for CI runners being "
                         "genuinely slower than the baseline machine")
    args = ap.parse_args()

    base_mode, base = load_rows(args.baseline)
    cur_mode, cur = load_rows(args.current)
    if base_mode != cur_mode:
        sys.exit(f"error: mode mismatch: baseline={base_mode} current={cur_mode}")

    common = sorted(set(base) & set(cur))
    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"error: schedulers missing from current run: {missing}")
    unknown = sorted(set(cur) - set(base))
    if unknown:
        sys.exit(f"error: schedulers absent from the committed baseline "
                 f"(regenerate it in this PR): {unknown}")

    ratios = {s: cur[s]["wall_s"] / max(base[s]["wall_s"], 1e-9) for s in common}
    med = statistics.median(ratios.values())
    limit = med * (1.0 + args.tolerance)

    print(f"{'scheduler':<22} {'base_s':>9} {'now_s':>9} {'ratio':>7}   verdict")
    failures = []
    for s in common:
        r = ratios[s]
        verdict = "ok"
        if r > limit:
            verdict = f"REGRESSED (> {limit:.2f})"
            failures.append(s)
        print(f"{s:<22} {base[s]['wall_s']:>9.3f} {cur[s]['wall_s']:>9.3f} "
              f"{r:>7.2f}   {verdict}")
    print(f"median ratio (machine drift): {med:.2f}, "
          f"per-scheduler limit: {limit:.2f}")

    if med > args.max_drift:
        sys.exit(f"FAIL: median wall-time ratio {med:.2f} exceeds the "
                 f"{args.max_drift:.1f}x drift backstop — every scheduler "
                 f"regressed together")
    if failures:
        sys.exit(f"FAIL: wall-time regression beyond {args.tolerance:.0%} "
                 f"of fleet drift in: {', '.join(failures)}")
    print("bench guard: no per-scheduler regression")


if __name__ == "__main__":
    main()
