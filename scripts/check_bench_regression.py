#!/usr/bin/env python3
"""Bench-regression guard for sim_throughput.

Compares a fresh quick-mode run against the committed quick baseline and
fails when any scheduler's wall time regressed beyond a generous tolerance.

CI runners and developer machines differ in absolute speed, so raw wall
times are not comparable across hosts. The guard instead normalizes by the
*median* wall-time ratio across schedulers (the machine-drift factor) and
flags a scheduler only when it regressed relative to the rest of the fleet:

    ratio_i = wall_now_i / wall_base_i
    fail if ratio_i > median(ratio) * (1 + tolerance_i)

A uniform slowdown (slow runner) moves every ratio together and passes; a
decision-path regression in one scheduler moves only its ratio and fails.
An absolute backstop (median ratio > --max-drift) catches the pathological
case of *every* scheduler regressing in lockstep on comparable hardware.

NoShare gets a tighter per-scheduler tolerance (--noshare-tolerance): its
wall time is dominated by the segmented per-query drain, the single most
perf-sensitive path in the engine, and a small relative slip there means a
data-structure regression rather than noise.

The fixture build (catalog + parallel trace generation) is guarded the same
way, normalized by the same fleet-median drift: ``fixture_build_s`` must not
exceed the baseline by more than --fixture-tolerance after drift correction.

The overload, crash, and lossy-link rows carry *virtual-time* percentiles,
which are deterministic for a fixed fixture: the door-on interactive p90
must stay below door-off (and within --p90-tolerance of the baseline), the
crash_failover_on global p90 must stay below crash_failover_off (and
within the same tolerance of the baseline) — failover has to keep paying
for the evacuation machinery it adds — and the lossy_link_hedge_on global
p90 must stay below lossy_link_hedge_off (and within the same tolerance of
the baseline): straggler hedging has to keep paying for the work it
duplicates.

The flight-recorder overhead gates compare rows *within the current run*
(same machine, same reps, identical fixture), so no drift correction is
needed: ``telemetry_off`` — the instrumented code path with the null sink —
must stay within --telemetry-off-tolerance of the plain greedy row (the
``enabled()`` guard must compile to dead weight), and ``telemetry_ring``
must stay within --telemetry-ring-tolerance of ``telemetry_off``. An
absolute slack (--telemetry-abs-slack) keeps the percentage gates
meaningful at quick scale, where rows run tens of milliseconds.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.25] [--noshare-tolerance 0.15] \
        [--fixture-tolerance 0.5] [--max-drift 4.0] \
        [--telemetry-off-tolerance 0.02] [--telemetry-ring-tolerance 0.10] \
        [--telemetry-abs-slack 0.05]
"""

import argparse
import json
import statistics
import sys

NOSHARE = "NoShare"
DOOR_ON = "overload_flash_door_on"
DOOR_OFF = "overload_flash_door_off"
CRASH_ON = "crash_failover_on"
CRASH_OFF = "crash_failover_off"
LOSSY_ON = "lossy_link_hedge_on"
LOSSY_OFF = "lossy_link_hedge_off"
GREEDY = "LifeRaft(α=0.00)"
TELEMETRY_OFF = "telemetry_off"
TELEMETRY_RING = "telemetry_ring"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {r["scheduler"]: r for r in doc.get("results", [])}
    if not rows:
        sys.exit(f"error: no results in {path}")
    return doc, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed per-scheduler regression over the fleet "
                         "median ratio (default 0.25 = 25%%)")
    ap.add_argument("--noshare-tolerance", type=float, default=0.15,
                    help="tighter tolerance for the NoShare row (default "
                         "0.15): its wall time is pure segmented-drain "
                         "throughput, the most perf-sensitive path")
    ap.add_argument("--fixture-tolerance", type=float, default=0.5,
                    help="allowed drift-normalized regression of "
                         "fixture_build_s (default 0.5; the build is a "
                         "single sample, so it gets more slack)")
    ap.add_argument("--p90-tolerance", type=float, default=0.05,
                    help="allowed growth of the door-on interactive p90 over "
                         "the committed baseline (default 0.05). The p90 is "
                         "*virtual-time* — deterministic for a fixed fixture "
                         "— so any growth is a real admission-policy change, "
                         "not machine noise; the slack only absorbs benign "
                         "fixture retuning")
    ap.add_argument("--telemetry-off-tolerance", type=float, default=0.02,
                    help="allowed overhead of the telemetry_off row over the "
                         "plain greedy row in the current run (default 0.02: "
                         "the null sink must be free)")
    ap.add_argument("--telemetry-ring-tolerance", type=float, default=0.10,
                    help="allowed overhead of the telemetry_ring row over "
                         "telemetry_off in the current run (default 0.10: "
                         "the always-on flight recorder stays cheap)")
    ap.add_argument("--telemetry-abs-slack", type=float, default=0.05,
                    help="absolute wall-seconds slack added to both "
                         "telemetry gates (default 0.05s); keeps the "
                         "percentage gates meaningful on rows that run in "
                         "tens of milliseconds")
    ap.add_argument("--max-drift", type=float, default=3.0,
                    help="cap on the median ratio itself (default 3.0). This "
                         "is the backstop for fleet-wide regressions — a "
                         "shared decision-path slowdown moves every ratio "
                         "together, which the relative gate cannot see — "
                         "while still leaving headroom for CI runners being "
                         "genuinely slower than the baseline machine")
    args = ap.parse_args()

    base_doc, base = load(args.baseline)
    cur_doc, cur = load(args.current)
    if base_doc.get("mode") != cur_doc.get("mode"):
        sys.exit(f"error: mode mismatch: baseline={base_doc.get('mode')} "
                 f"current={cur_doc.get('mode')}")

    common = sorted(set(base) & set(cur))
    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"error: schedulers missing from current run: {missing}")
    unknown = sorted(set(cur) - set(base))
    if unknown:
        sys.exit(f"error: schedulers absent from the committed baseline "
                 f"(regenerate it in this PR): {unknown}")

    ratios = {s: cur[s]["wall_s"] / max(base[s]["wall_s"], 1e-9) for s in common}
    med = statistics.median(ratios.values())

    print(f"{'scheduler':<22} {'base_s':>9} {'now_s':>9} {'ratio':>7}   verdict")
    failures = []
    for s in common:
        tol = args.noshare_tolerance if s == NOSHARE else args.tolerance
        limit = med * (1.0 + tol)
        r = ratios[s]
        verdict = "ok"
        if r > limit:
            verdict = f"REGRESSED (> {limit:.2f})"
            failures.append(s)
        print(f"{s:<22} {base[s]['wall_s']:>9.3f} {cur[s]['wall_s']:>9.3f} "
              f"{r:>7.2f}   {verdict}")
    print(f"median ratio (machine drift): {med:.2f}")

    fixture_failed = False
    fb, fc = base_doc.get("fixture_build_s"), cur_doc.get("fixture_build_s")
    if fb is not None and fc is not None and fb > 0:
        # The fixture build fans across all available cores while the
        # scheduler rows (and thus the drift median) are single-threaded, so
        # compare *serial-equivalent* cost: wall time × thread count.
        # Sub-linear parallel speedup makes this overstate the side with
        # more threads; for the dangerous direction (many-core baseline
        # refresh, small CI runner) that errs toward leniency, and the wide
        # --fixture-tolerance absorbs the imperfect-scaling penalty of the
        # opposite direction.
        fb *= base_doc.get("fixture_threads", 1)
        fc *= cur_doc.get("fixture_threads", 1)
        fr = fc / fb
        flimit = med * (1.0 + args.fixture_tolerance)
        verdict = "ok"
        if fr > flimit:
            verdict = f"REGRESSED (> {flimit:.2f})"
            fixture_failed = True
        print(f"{'fixture_build':<22} {fb:>9.3f} {fc:>9.3f} {fr:>7.2f}   {verdict}")
    else:
        print("fixture_build: not present in both files, skipped")

    # Overload front-door guard: the controller must still protect
    # interactive latency. Two gates on the virtual-time interactive p90:
    # door-on strictly below door-off *within the current run* (the
    # controller's reason to exist), and door-on no worse than the
    # committed baseline beyond --p90-tolerance.
    p90_failures = []
    if DOOR_ON in cur and DOOR_OFF in cur:
        on = cur[DOOR_ON].get("interactive_p90_s")
        off = cur[DOOR_OFF].get("interactive_p90_s")
        if on is not None and off is not None:
            verdict = "ok"
            if on >= off:
                verdict = "REGRESSED (door-on >= door-off)"
                p90_failures.append("door-on p90 not below door-off")
            print(f"{'interactive_p90 on/off':<22} {off:>9.3f} {on:>9.3f} "
                  f"{on / max(off, 1e-9):>7.2f}   {verdict}")
        base_on = base.get(DOOR_ON, {}).get("interactive_p90_s")
        if on is not None and base_on is not None and base_on > 0:
            limit = base_on * (1.0 + args.p90_tolerance)
            verdict = "ok"
            if on > limit:
                verdict = f"REGRESSED (> {limit:.2f})"
                p90_failures.append(
                    f"door-on p90 {on:.2f}s over baseline {base_on:.2f}s")
            print(f"{'interactive_p90 vs base':<22} {base_on:>9.3f} {on:>9.3f} "
                  f"{on / base_on:>7.2f}   {verdict}")
    else:
        print("overload rows: not present in both files, skipped")

    # Crash-failover guard: evacuation plus re-delivery must keep paying
    # for itself. Same shape as the front-door gates, on the virtual-time
    # global p90 of the crash scenario: failover-on strictly below
    # failover-off *within the current run* (otherwise the subsystem is
    # dead weight), and failover-on no worse than the committed baseline
    # beyond --p90-tolerance.
    failover_failures = []
    if CRASH_ON in cur and CRASH_OFF in cur:
        on = cur[CRASH_ON].get("p90_response_s")
        off = cur[CRASH_OFF].get("p90_response_s")
        if on is not None and off is not None:
            verdict = "ok"
            if on >= off:
                verdict = "REGRESSED (failover-on >= failover-off)"
                failover_failures.append("failover-on p90 not below failover-off")
            print(f"{'crash_p90 on/off':<22} {off:>9.3f} {on:>9.3f} "
                  f"{on / max(off, 1e-9):>7.2f}   {verdict}")
        base_on = base.get(CRASH_ON, {}).get("p90_response_s")
        if on is not None and base_on is not None and base_on > 0:
            limit = base_on * (1.0 + args.p90_tolerance)
            verdict = "ok"
            if on > limit:
                verdict = f"REGRESSED (> {limit:.2f})"
                failover_failures.append(
                    f"failover-on p90 {on:.2f}s over baseline {base_on:.2f}s")
            print(f"{'crash_p90 vs base':<22} {base_on:>9.3f} {on:>9.3f} "
                  f"{on / base_on:>7.2f}   {verdict}")
    else:
        print("crash rows: not present in both files, skipped")

    # Lossy-link hedging guard: racing a duplicate against the straggler
    # must keep beating retransmit-only delivery. Same shape as the crash
    # gates, on the virtual-time global p90 of the lossy-link scenario:
    # hedge-on strictly below hedge-off *within the current run* (otherwise
    # the hedging policy is burning duplicate work for nothing), and
    # hedge-on no worse than the committed baseline beyond --p90-tolerance.
    hedge_failures = []
    if LOSSY_ON in cur and LOSSY_OFF in cur:
        on = cur[LOSSY_ON].get("p90_response_s")
        off = cur[LOSSY_OFF].get("p90_response_s")
        if on is not None and off is not None:
            verdict = "ok"
            if on >= off:
                verdict = "REGRESSED (hedge-on >= hedge-off)"
                hedge_failures.append("hedge-on p90 not below hedge-off")
            print(f"{'lossy_p90 on/off':<22} {off:>9.3f} {on:>9.3f} "
                  f"{on / max(off, 1e-9):>7.2f}   {verdict}")
        base_on = base.get(LOSSY_ON, {}).get("p90_response_s")
        if on is not None and base_on is not None and base_on > 0:
            limit = base_on * (1.0 + args.p90_tolerance)
            verdict = "ok"
            if on > limit:
                verdict = f"REGRESSED (> {limit:.2f})"
                hedge_failures.append(
                    f"hedge-on p90 {on:.2f}s over baseline {base_on:.2f}s")
            print(f"{'lossy_p90 vs base':<22} {base_on:>9.3f} {on:>9.3f} "
                  f"{on / base_on:>7.2f}   {verdict}")
    else:
        print("lossy-link rows: not present in both files, skipped")

    # Flight-recorder overhead gates, within the current run only (same
    # machine, same reps — no drift to correct for).
    telemetry_failures = []
    gates = [
        (TELEMETRY_OFF, GREEDY, args.telemetry_off_tolerance),
        (TELEMETRY_RING, TELEMETRY_OFF, args.telemetry_ring_tolerance),
    ]
    for row, ref, tol in gates:
        if row not in cur or ref not in cur:
            print(f"telemetry gate {row} vs {ref}: rows not present, skipped")
            continue
        now = cur[row]["wall_s"]
        base_wall = cur[ref]["wall_s"]
        limit = base_wall * (1.0 + tol) + args.telemetry_abs_slack
        verdict = "ok"
        if now > limit:
            verdict = f"REGRESSED (> {limit:.3f}s)"
            telemetry_failures.append(
                f"{row} {now:.3f}s over {ref} {base_wall:.3f}s "
                f"(limit {limit:.3f}s)")
        print(f"{row + ' vs ' + ref:<38} {base_wall:>9.3f} {now:>9.3f} "
              f"{now / max(base_wall, 1e-9):>7.2f}   {verdict}")

    if med > args.max_drift:
        sys.exit(f"FAIL: median wall-time ratio {med:.2f} exceeds the "
                 f"{args.max_drift:.1f}x drift backstop — every scheduler "
                 f"regressed together")
    if failures:
        sys.exit(f"FAIL: wall-time regression beyond fleet drift in: "
                 f"{', '.join(failures)}")
    if fixture_failed:
        sys.exit(f"FAIL: fixture_build_s regressed beyond "
                 f"{args.fixture_tolerance:.0%} of fleet drift")
    if p90_failures:
        sys.exit(f"FAIL: interactive-p90 front-door guard: "
                 f"{'; '.join(p90_failures)}")
    if failover_failures:
        sys.exit(f"FAIL: crash-failover p90 guard: "
                 f"{'; '.join(failover_failures)}")
    if hedge_failures:
        sys.exit(f"FAIL: lossy-link hedging p90 guard: "
                 f"{'; '.join(hedge_failures)}")
    if telemetry_failures:
        sys.exit(f"FAIL: flight-recorder overhead guard: "
                 f"{'; '.join(telemetry_failures)}")
    print("bench guard: no per-scheduler, fixture, front-door, failover, "
          "hedging, or telemetry regression")


if __name__ == "__main__":
    main()
