//! Offline stand-in for the subset of the `rand_distr` 0.4 API this
//! workspace may use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the distributions it needs. Currently that is only [`Exp`]
//! (inverse-CDF exponential sampling, used by open-loop arrival processes);
//! add distributions here as call sites appear rather than growing the stub
//! speculatively.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::Rng;

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The exponential distribution `Exp(λ)`, sampled by inversion.
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// Returns `Err` on a non-positive or non-finite rate, mirroring the
    /// upstream constructor's fallibility.
    pub fn new(lambda: f64) -> Result<Self, &'static str> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err("Exp: rate must be finite and positive")
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Exp};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn exp_mean_is_one_over_lambda() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Exp::new(4.0).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean} far from 0.25");
    }

    #[test]
    fn invalid_rate_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }
}
