//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal measuring harness with criterion's API shape:
//! [`Criterion`] with `benchmark_group`/`bench_function`/`bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass followed by
//! `sample_size` timed samples of an adaptively chosen batch, reporting the
//! median per-iteration time. There are no plots, no statistics files, and
//! no outlier analysis; the numbers are for local sanity checks, while CI
//! only compiles benches (`cargo bench --no-run`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.to_string();
        run_benchmark(self, &id, f);
        self
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &id, &mut f);
        self
    }

    /// Runs one parameterised benchmark, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.0);
        run_benchmark(self.criterion, &id, |b| f(b, input));
        self
    }

    /// Finishes the group. A no-op here; kept for API compatibility.
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, batch: u64) -> Duration {
    let mut b = Bencher {
        batch,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    // Warm up and estimate the per-iteration cost with growing batches.
    let warm_start = Instant::now();
    let mut batch = 1u64;
    let mut per_iter = loop {
        let elapsed = time_batch(&mut f, batch);
        if warm_start.elapsed() >= c.warm_up_time || elapsed > Duration::from_millis(50) {
            break elapsed.as_secs_f64() / batch as f64;
        }
        batch = batch.saturating_mul(2);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }

    // Pick a batch size so all samples fit the measurement budget.
    let budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let batch = ((budget / per_iter) as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = (0..c.sample_size)
        .map(|_| time_batch(&mut f, batch).as_secs_f64() / batch as f64)
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{id:<60} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("smoke");
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("cover", "60arcsec").0, "cover/60arcsec");
    }
}
