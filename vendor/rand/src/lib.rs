//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the `rand` surface it calls:
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`], and
//! [`SeedableRng::seed_from_u64`] for [`rngs::StdRng`]. The generator is a
//! SplitMix64-seeded xoshiro256++ — high quality, tiny, and bit-reproducible
//! across platforms, which is all the simulation needs. Streams are NOT
//! bit-compatible with upstream `rand`; only the API shape is.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut RngAdapter(self))
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

// `SampleRange::sample_from` needs a concrete `&mut dyn`-like handle to an
// arbitrary `?Sized` rng; this adapter provides it without unsafe code.
struct RngAdapter<'a, T: ?Sized>(&'a mut T);

impl<T: RngCore + ?Sized> RngCore for RngAdapter<'_, T> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A rng constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (Blackman & Vigna). Not the upstream `StdRng` stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for state initialisation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Maps 64 random bits to a double in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a double in `[0, 1]` (both endpoints reachable).
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// A range that can be sampled, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let x = self.start + u * (self.end - self.start);
                // Guard the pathological rounding case u*(hi-lo)+lo == hi.
                if x < self.end { x } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64_inclusive(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: u8 = rng.gen_range(0..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
