//! Offline stand-in for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface the
//! tests were written against: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`], [`ProptestConfig::with_cases`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream: failures panic immediately with the failing
//! inputs **without shrinking**, and value streams are deterministic per
//! test name (no `PROPTEST_` env handling). That is sufficient for CI: a
//! failure is still reproducible because the rng seed is a pure function of
//! the test name.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use config::ProptestConfig;

/// Run-loop configuration.
pub mod config {
    /// Mirrors `proptest::test_runner::Config` (the subset used here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is executed against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The deterministic rng driving value generation.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A seeded generator handed to [`crate::Strategy::sample`].
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Builds the rng for a named test: the seed is a pure function of
        /// the name, so every run of a given test sees the same cases.
        /// FNV-1a rather than std's `DefaultHasher`, whose output is not
        /// guaranteed stable across Rust releases.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream there is no shrinking: a strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring `Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy yielding `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(&mut rng.0, 0.5)
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: an exact size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec: empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(&mut rng.0, self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Strategy};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// upstream proptest) that runs `body` against `config.cases` sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one property fn, then
/// recurses on the rest.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
///
/// Failures panic immediately (no shrinking) with the standard `assert!`
/// message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, -1.0..1.0f64), n in 1usize..5) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4), "elements in range: {:?}", v);
        }

        #[test]
        fn map_and_bool(flag in crate::bool::ANY, x in (0u64..100).prop_map(|v| v * 2)) {
            let _: bool = flag;
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn exact_vec_len(v in crate::collection::vec(Just(7u8), 3)) {
            prop_assert_eq!(v, vec![7u8; 3]);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::sample(&s, &mut r1),
                crate::Strategy::sample(&s, &mut r2)
            );
        }
    }
}
